// DecisionAudit: record/join semantics, eviction, mispredict detection, and
// end-to-end population of the broker.predict_error.* histograms in both
// worlds — the virtual-time simulator and the real-sockets MiniCluster.
#include "obs/audit.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "cluster/config.h"
#include "fs/docbase.h"
#include "http/message.h"
#include "obs/registry.h"
#include "runtime/client.h"
#include "runtime/mini_cluster.h"
#include "workload/scenario.h"

namespace sweb::obs {
namespace {

Decision make_decision(std::uint64_t id, double ts = 1.0) {
  Decision d;
  d.request_id = id;
  d.origin = 0;
  d.chosen = 1;
  d.decision_ts_s = ts;
  d.predicted.t_redirection = 0.010;
  d.predicted.t_data = 0.100;
  d.predicted.t_cpu = 0.020;
  d.runner_up_margin = 0.005;
  return d;
}

TEST(DecisionAudit, JoinPublishesPerTermErrors) {
  Registry registry;
  DecisionAudit audit;
  audit.bind_registry(registry);

  audit.record_decision(make_decision(7));
  ASSERT_TRUE(audit.pending(7).has_value());
  EXPECT_EQ(audit.pending(7)->chosen, 1);
  EXPECT_EQ(audit.pending_count(), 1u);

  Observation seen;
  seen.t_redirection = 0.012;
  seen.t_data = 0.090;
  seen.t_cpu = 0.025;
  seen.total = 0.140;
  EXPECT_TRUE(audit.record_outcome(7, seen));
  EXPECT_EQ(audit.pending_count(), 0u);
  EXPECT_FALSE(audit.pending(7).has_value());

  const RegistrySnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("broker.audit.decisions"), 1u);
  EXPECT_EQ(snap.counters.at("broker.audit.joined"), 1u);
  for (const char* name :
       {"broker.predict_error.t_redirection", "broker.predict_error.t_data",
        "broker.predict_error.t_cpu", "broker.predict_error.total"}) {
    EXPECT_EQ(snap.histograms.at(name).count, 1u) << name;
  }
  // The error recorded is |observed − predicted|: |0.090 − 0.100| = 0.010.
  EXPECT_NEAR(snap.histograms.at("broker.predict_error.t_data").sum, 0.010,
              1e-9);
  // 0.9x observed/predicted is nowhere near the 4x divergence factor.
  EXPECT_EQ(snap.counters.at("oracle.mispredict"), 0u);
}

TEST(DecisionAudit, TimestampsSupplyRedirectionAndTotal) {
  Registry registry;
  DecisionAudit audit;
  audit.bind_registry(registry);
  audit.record_decision(make_decision(3, /*ts=*/1.0));

  // No explicit durations: t_redirection derives from service start minus
  // decision time, total from completion minus decision time; the
  // unmeasured data/cpu terms stay out of their histograms.
  Observation seen;
  seen.service_start_ts_s = 1.5;
  seen.completion_ts_s = 3.0;
  EXPECT_TRUE(audit.record_outcome(3, seen));

  const RegistrySnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.histograms.at("broker.predict_error.t_redirection").count,
            1u);
  EXPECT_NEAR(snap.histograms.at("broker.predict_error.t_redirection").sum,
              std::abs(0.5 - 0.010), 1e-9);
  EXPECT_EQ(snap.histograms.at("broker.predict_error.total").count, 1u);
  EXPECT_NEAR(snap.histograms.at("broker.predict_error.total").sum,
              std::abs(2.0 - 0.130), 1e-9);
  EXPECT_EQ(snap.histograms.at("broker.predict_error.t_data").count, 0u);
  EXPECT_EQ(snap.histograms.at("broker.predict_error.t_cpu").count, 0u);
}

TEST(DecisionAudit, MispredictFiresPastTheFactor) {
  Registry registry;
  DecisionAudit audit;  // default factor 4x, floor 1 ms
  audit.bind_registry(registry);

  audit.record_decision(make_decision(1));  // predicts t_data = 0.100
  Observation seen;
  seen.t_data = 0.5;  // 5x the prediction: a mispredict
  EXPECT_TRUE(audit.record_outcome(1, seen));
  EXPECT_EQ(registry.counter("oracle.mispredict").value(), 1u);

  audit.record_decision(make_decision(2));
  Observation fine;
  fine.t_data = 0.2;  // 2x: inside the factor
  EXPECT_TRUE(audit.record_outcome(2, fine));
  EXPECT_EQ(registry.counter("oracle.mispredict").value(), 1u);
}

TEST(DecisionAudit, MispredictFloorIgnoresTinyTerms) {
  Registry registry;
  DecisionAudit audit;
  audit.bind_registry(registry);

  Decision d = make_decision(1);
  d.predicted.t_data = 1e-5;
  d.predicted.t_cpu = 0.0;
  audit.record_decision(d);

  // 50x off, but both sides are under the 1 ms floor: too small to judge.
  Observation tiny;
  tiny.t_data = 5e-4;
  EXPECT_TRUE(audit.record_outcome(1, tiny));
  EXPECT_EQ(registry.counter("oracle.mispredict").value(), 0u);

  // A zero prediction against an observation above the floor does diverge.
  audit.record_decision(d);
  Observation big;
  big.t_cpu = 0.010;
  EXPECT_TRUE(audit.record_outcome(1, big));
  EXPECT_EQ(registry.counter("oracle.mispredict").value(), 1u);
}

TEST(DecisionAudit, OrphanOutcomeCountsAndReturnsFalse) {
  Registry registry;
  DecisionAudit audit;
  audit.bind_registry(registry);
  Observation seen;
  seen.total = 1.0;
  EXPECT_FALSE(audit.record_outcome(99, seen));
  EXPECT_EQ(registry.counter("broker.audit.orphaned").value(), 1u);
  EXPECT_EQ(registry.counter("broker.audit.joined").value(), 0u);
}

TEST(DecisionAudit, CapacityEvictsOldestPending) {
  Registry registry;
  AuditParams params;
  params.max_pending = 3;
  DecisionAudit audit(params);
  audit.bind_registry(registry);

  for (std::uint64_t id = 1; id <= 5; ++id) {
    audit.record_decision(make_decision(id));
  }
  EXPECT_EQ(audit.pending_count(), 3u);
  EXPECT_EQ(registry.counter("broker.audit.evicted").value(), 2u);
  EXPECT_FALSE(audit.pending(1).has_value());
  EXPECT_FALSE(audit.pending(2).has_value());
  EXPECT_TRUE(audit.pending(3).has_value());
  EXPECT_TRUE(audit.pending(5).has_value());
}

TEST(DecisionAudit, InfiniteMarginStaysOutOfTheSum) {
  Registry registry;
  DecisionAudit audit;
  audit.bind_registry(registry);

  // A sole-candidate decision has no runner-up: margin is +inf, which the
  // histogram must clamp or the sum (and every JSON rendering of it) rots.
  Decision d = make_decision(1);
  d.runner_up_margin = std::numeric_limits<double>::infinity();
  audit.record_decision(d);

  const RegistrySnapshot snap = registry.snapshot();
  const auto& margin = snap.histograms.at("broker.decision.margin");
  EXPECT_EQ(margin.count, 1u);
  EXPECT_TRUE(std::isfinite(margin.sum));
}

TEST(DecisionAudit, JoinsWithoutARegistry) {
  DecisionAudit audit;  // never bound: publishes nothing, still joins
  audit.record_decision(make_decision(4));
  EXPECT_EQ(audit.pending_count(), 1u);
  Observation seen;
  seen.total = 0.2;
  EXPECT_TRUE(audit.record_outcome(4, seen));
  EXPECT_EQ(audit.pending_count(), 0u);
}

// --- The simulator populates the audit under virtual time ----------------

TEST(DecisionAuditSim, ExperimentPopulatesEveryErrorTerm) {
  Registry registry;
  DecisionAudit audit;
  audit.bind_registry(registry);

  workload::ExperimentSpec spec;
  spec.cluster = cluster::meiko_config(4);
  spec.docbase =
      fs::make_uniform(32, 256 * 1024, 4, fs::Placement::kRoundRobin);
  spec.policy = "sweb";
  spec.burst.rps = 16.0;
  spec.burst.duration_s = 10.0;
  spec.registry = &registry;
  spec.audit = &audit;
  const workload::ExperimentResult result = workload::run_experiment(spec);
  EXPECT_GT(result.summary.completed, 0u);

  const RegistrySnapshot snap = registry.snapshot();
  const std::uint64_t joined = snap.counters.at("broker.audit.joined");
  EXPECT_GT(snap.counters.at("broker.audit.decisions"), 0u);
  EXPECT_GT(joined, 0u);
  // The simulator measures all four terms, so every join lands one sample
  // in each histogram.
  for (const char* name :
       {"broker.predict_error.t_redirection", "broker.predict_error.t_data",
        "broker.predict_error.t_cpu", "broker.predict_error.total"}) {
    EXPECT_EQ(snap.histograms.at(name).count, joined) << name;
  }
  EXPECT_GT(snap.histograms.at("broker.decision.margin").count, 0u);
}

// --- The sockets runtime populates it under wall time --------------------

TEST(DecisionAuditRuntime, MiniClusterJoinsAcrossTheRedirect) {
  runtime::MiniCluster cluster(
      2, fs::make_uniform(12, 4096, 2, fs::Placement::kRoundRobin, nullptr,
                          "/docs"));
  cluster.start();
  // Ask node 0 for every document: the odd-numbered files live on node 1,
  // so half the requests take the 302 hop and the outcome must join on the
  // serving node via the propagated request id.
  for (int i = 0; i < 12; ++i) {
    const auto r = runtime::fetch(
        "http://127.0.0.1:" + std::to_string(cluster.port(0)) +
        "/docs/file" + std::to_string(i) + ".html");
    ASSERT_TRUE(r.has_value()) << "file" << i;
    EXPECT_EQ(http::code(r->response.status), 200);
  }
  cluster.stop();

  const RegistrySnapshot snap = cluster.registry().snapshot();
  EXPECT_EQ(snap.counters.at("broker.audit.decisions"), 12u);
  EXPECT_EQ(snap.counters.at("broker.audit.joined"), 12u);
  EXPECT_EQ(snap.counters.at("broker.audit.orphaned"), 0u);
  // The PhaseClock join feeds every term from measured phases: doc_read is
  // the observed t_data, cgi_exec the observed t_cpu (0 for these static
  // requests — the cost genuinely not paid, graded against the model's
  // per-request CPU charge).
  for (const char* name :
       {"broker.predict_error.t_redirection", "broker.predict_error.t_data",
        "broker.predict_error.t_cpu", "broker.predict_error.total"}) {
    EXPECT_EQ(snap.histograms.at(name).count, 12u) << name;
  }
}

}  // namespace
}  // namespace sweb::obs
