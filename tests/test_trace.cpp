#include "workload/trace.h"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "workload/scenario.h"

namespace sweb::workload {
namespace {

TEST(Trace, AddAndDuration) {
  Trace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_DOUBLE_EQ(trace.duration(), 0.0);
  trace.add(1.0, 0, "/a");
  trace.add(4.5, 1, "/b");
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_DOUBLE_EQ(trace.duration(), 4.5);
}

TEST(Trace, SortIsStableByTime) {
  Trace trace;
  trace.add(2.0, 0, "/late");
  trace.add(1.0, 0, "/first");
  trace.add(1.0, 1, "/second");  // same time: original order kept
  trace.sort_by_time();
  EXPECT_EQ(trace.entries()[0].path, "/first");
  EXPECT_EQ(trace.entries()[1].path, "/second");
  EXPECT_EQ(trace.entries()[2].path, "/late");
}

TEST(Trace, CsvRoundTrip) {
  Trace trace;
  trace.add(0.25, 3, "/adl/scene0.tiff");
  trace.add(1.75, 0, "/adl/meta1.html");
  std::stringstream buffer;
  trace.save_csv(buffer);
  const Trace loaded = Trace::load_csv(buffer);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded.entries()[0].time, 0.25);
  EXPECT_EQ(loaded.entries()[0].client, 3);
  EXPECT_EQ(loaded.entries()[0].path, "/adl/scene0.tiff");
  EXPECT_EQ(loaded.entries()[1].path, "/adl/meta1.html");
}

TEST(Trace, LoadSkipsHeaderCommentsAndBlanks) {
  std::stringstream in(
      "time,client,path\n"
      "# a comment\n"
      "\n"
      "0.5,1,/x\n");
  const Trace trace = Trace::load_csv(in);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.entries()[0].path, "/x");
}

TEST(Trace, LoadSortsOutOfOrderInput) {
  std::stringstream in("5,0,/late\n1,0,/early\n");
  const Trace trace = Trace::load_csv(in);
  EXPECT_EQ(trace.entries()[0].path, "/early");
}

TEST(Trace, LoadRejectsMalformedLines) {
  {
    std::stringstream in("not-a-number,0,/x\n");
    EXPECT_THROW(Trace::load_csv(in), std::runtime_error);
  }
  {
    std::stringstream in("1,0\n");
    EXPECT_THROW(Trace::load_csv(in), std::runtime_error);
  }
  {
    std::stringstream in("1,-2,/x\n");
    EXPECT_THROW(Trace::load_csv(in), std::runtime_error);
  }
}

TEST(GenerateTrace, ShapeAndDeterminism) {
  const fs::Docbase docs =
      fs::make_uniform(32, 4096, 4, fs::Placement::kRoundRobin);
  util::Rng rng1(9), rng2(9);
  const Trace a = generate_trace(docs, 10.0, 5.0, 4, rng1);
  const Trace b = generate_trace(docs, 10.0, 5.0, 4, rng2);
  EXPECT_EQ(a.size(), 50u);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entries()[i].path, b.entries()[i].path);
    EXPECT_DOUBLE_EQ(a.entries()[i].time, b.entries()[i].time);
  }
  for (const TraceEntry& e : a.entries()) {
    EXPECT_GE(e.client, 0);
    EXPECT_LT(e.client, 4);
    EXPECT_NE(docs.find(e.path), nullptr);
  }
}

TEST(GenerateTrace, ZipfSkewsPopularity) {
  const fs::Docbase docs =
      fs::make_uniform(64, 4096, 4, fs::Placement::kRoundRobin);
  util::Rng rng(11);
  const Trace trace = generate_trace(docs, 50.0, 10.0, 4, rng, 1.4);
  std::map<std::string, int> counts;
  for (const TraceEntry& e : trace.entries()) ++counts[e.path];
  int max_count = 0;
  for (const auto& [path, count] : counts) max_count = std::max(max_count, count);
  // At s=1.4, the hottest document dominates well beyond uniform share.
  EXPECT_GT(max_count, static_cast<int>(trace.size()) / 16);
}

TEST(TraceReplay, DrivesAnExperimentExactly) {
  const fs::Docbase docs =
      fs::make_uniform(24, 64 * 1024, 4, fs::Placement::kRoundRobin);
  util::Rng rng(21);
  const Trace trace = generate_trace(docs, 8.0, 10.0, 6, rng);

  ExperimentSpec spec;
  spec.cluster = cluster::meiko_config(4);
  spec.docbase = docs;
  spec.policy = "sweb";
  spec.trace = trace;
  spec.clients = ucsb_clients();
  const ExperimentResult result = run_experiment(spec);
  EXPECT_EQ(result.summary.total, trace.size());
  EXPECT_EQ(result.summary.completed, trace.size());
  EXPECT_NEAR(result.offered_rps, 8.0, 1.0);
}

TEST(TraceReplay, SameTraceDifferentPoliciesSameOfferedLoad) {
  const fs::Docbase docs =
      fs::make_uniform(24, 64 * 1024, 4, fs::Placement::kRoundRobin);
  util::Rng rng(22);
  const Trace trace = generate_trace(docs, 6.0, 8.0, 4, rng);
  std::size_t totals[2];
  int i = 0;
  for (const char* policy : {"round-robin", "sweb"}) {
    ExperimentSpec spec;
    spec.cluster = cluster::meiko_config(4);
    spec.docbase = docs;
    spec.policy = policy;
    spec.trace = trace;
    totals[i++] = run_experiment(spec).summary.total;
  }
  EXPECT_EQ(totals[0], totals[1]);
}

}  // namespace
}  // namespace sweb::workload
