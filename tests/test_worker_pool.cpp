// The bounded worker pool: N clients served concurrently per node, one
// slow client cannot head-of-line-block the rest, and connections past the
// worker+queue cap are shed with 503 — the runtime analogue of the
// simulator's connection-limit/backlog model.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "fs/docbase.h"
#include "http/parser.h"
#include "runtime/client.h"
#include "runtime/mini_cluster.h"
#include "runtime/socket.h"

namespace sweb::runtime {
namespace {

using namespace std::chrono_literals;

fs::Docbase small_docbase(int nodes) {
  return fs::make_uniform(12, 4096, nodes, fs::Placement::kRoundRobin,
                          nullptr, "/docs");
}

/// Spins until `predicate` holds or `timeout` passes; true on success.
template <typename Predicate>
[[nodiscard]] bool eventually(Predicate predicate,
                              std::chrono::milliseconds timeout = 2000ms) {
  const Deadline deadline = deadline_after(timeout);
  while (!predicate()) {
    if (time_remaining(deadline) <= 0ms) return false;
    std::this_thread::sleep_for(2ms);
  }
  return true;
}

/// Reads one full HTTP response off `stream` (EOF-framed or
/// Content-Length-framed).
[[nodiscard]] http::Response read_response(TcpStream& stream) {
  http::ResponseParser parser;
  http::ParseResult state = http::ParseResult::kNeedMore;
  while (state == http::ParseResult::kNeedMore) {
    const auto chunk = stream.read_some(16 * 1024, 2000ms);
    EXPECT_TRUE(chunk.ok);
    if (!chunk.ok) break;
    if (chunk.eof) {
      state = parser.finish_eof();
      break;
    }
    std::size_t consumed = 0;
    state = parser.feed(chunk.data, consumed);
  }
  EXPECT_EQ(state, http::ParseResult::kComplete);
  return parser.message();
}

TEST(WorkerPool, StalledClientDoesNotBlockOtherClients) {
  // One node, a handful of workers, a client that connects and then sends
  // nothing: with the serial accept loop this connection head-of-line
  // blocks the node for the whole io_timeout; with the pool it merely
  // occupies one worker.
  MiniClusterOptions options;
  options.max_workers = 8;
  options.io_timeout = 3000ms;
  MiniCluster cluster(1, small_docbase(1), options);
  cluster.start();

  auto stalled = TcpStream::connect(SocketAddress::loopback(cluster.port(0)),
                                    2000ms);
  ASSERT_TRUE(stalled.has_value());
  ASSERT_TRUE(
      eventually([&cluster] { return cluster.node(0).workers_busy() >= 1; }));

  constexpr int kClients = 8;
  std::atomic<int> ok{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&cluster, &ok, c] {
      const std::string url =
          "http://127.0.0.1:" + std::to_string(cluster.port(0)) +
          "/docs/file" + std::to_string(c % 12) + ".html";
      const auto result = fetch(url);
      if (result && http::code(result->response.status) == 200) ++ok;
    });
  }
  for (auto& t : clients) t.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_EQ(ok.load(), kClients);
  // The stalled connection holds its worker for io_timeout = 3 s; the
  // serial loop would make every client wait behind it. The pool must
  // serve them all while the stall is still in progress.
  EXPECT_LT(elapsed, 1500ms);
}

TEST(WorkerPool, ConcurrentClientsFinishWellUnderSerialTime) {
  // K clients against a CGI endpoint that holds a worker for ~50 ms. A
  // serial node needs >= K * 50 ms; the pooled node overlaps the service
  // times.
  constexpr int kClients = 8;
  MiniClusterOptions options;
  options.max_workers = 8;
  MiniCluster cluster(1, small_docbase(1), options);
  cluster.docs_mutable().register_cgi(
      "/cgi/slow.cgi", 0, [](const http::Request&, std::string_view) {
        std::this_thread::sleep_for(50ms);
        return http::make_ok("done", "text/plain");
      });
  cluster.start();
  const std::string url = "http://127.0.0.1:" +
                          std::to_string(cluster.port(0)) + "/cgi/slow.cgi";

  std::atomic<int> ok{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&url, &ok] {
      const auto result = fetch(url);
      if (result && http::code(result->response.status) == 200) ++ok;
    });
  }
  for (auto& t : clients) t.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_EQ(ok.load(), kClients);
  // Serial floor: 8 x 50 ms = 400 ms. Concurrent execution should land
  // near one service time; 250 ms leaves slack for scheduling noise while
  // still failing the serial accept loop.
  EXPECT_LT(elapsed, 250ms);
}

TEST(WorkerPool, ShedsWith503OnlyPastWorkerAndQueueCap) {
  NodeServer::Config cfg;
  cfg.node_id = 0;
  cfg.max_workers = 1;
  cfg.max_pending = 1;
  cfg.io_timeout = 5000ms;
  const fs::Docbase docs = small_docbase(1);
  const DocStore store(docs);
  LoadBoard board(1);
  NodeServer server(cfg, store, board);
  server.set_peer_ports({server.port()});
  server.start();

  // A occupies the single worker (connects, sends nothing).
  auto a = TcpStream::connect(SocketAddress::loopback(server.port()), 2000ms);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(eventually([&server] { return server.workers_busy() == 1; }));

  // B fills the one queue slot — accepted, NOT shed.
  auto b = TcpStream::connect(SocketAddress::loopback(server.port()), 2000ms);
  ASSERT_TRUE(b.has_value());
  ASSERT_TRUE(eventually([&server] { return server.queue_depth() == 1; }));
  EXPECT_EQ(server.shed_count(), 0u);

  // C exceeds workers + queue: shed with 503 and a closed connection.
  auto c = TcpStream::connect(SocketAddress::loopback(server.port()), 2000ms);
  ASSERT_TRUE(c.has_value());
  const http::Response rejected = read_response(*c);
  EXPECT_EQ(http::code(rejected.status), 503);
  EXPECT_EQ(rejected.headers.get("Connection"), "close");
  EXPECT_EQ(server.shed_count(), 1u);

  // Drop A: the worker frees up and serves the queued B normally.
  a->close();
  ASSERT_TRUE(eventually([&server] { return server.queue_depth() == 0; }));
  http::Request request;
  request.target = "/docs/file0.html";
  ASSERT_TRUE(b->write_all(request.serialize(), 2000ms));
  b->shutdown_write();
  const http::Response served = read_response(*b);
  EXPECT_EQ(http::code(served.status), 200);
  EXPECT_EQ(server.shed_count(), 1u);  // B was queued, never shed
  server.stop();
}

TEST(WorkerPool, ShedExportsCounterAndStatusGauges) {
  MiniClusterOptions options;
  options.max_workers = 1;
  options.max_pending = 1;
  options.io_timeout = 3000ms;
  MiniCluster cluster(1, small_docbase(1), options);
  cluster.start();

  auto a = TcpStream::connect(SocketAddress::loopback(cluster.port(0)),
                              2000ms);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(
      eventually([&cluster] { return cluster.node(0).workers_busy() == 1; }));
  auto b = TcpStream::connect(SocketAddress::loopback(cluster.port(0)),
                              2000ms);
  ASSERT_TRUE(b.has_value());
  ASSERT_TRUE(
      eventually([&cluster] { return cluster.node(0).queue_depth() == 1; }));
  auto c = TcpStream::connect(SocketAddress::loopback(cluster.port(0)),
                              2000ms);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(http::code(read_response(*c).status), 503);

  EXPECT_EQ(cluster.registry().counter("node.0.shed").value(), 1u);
  EXPECT_EQ(cluster.registry().gauge("node.0.workers_busy").value(), 1);
  EXPECT_EQ(cluster.registry().gauge("node.0.queue_depth").value(), 1);

  // Free the worker, then /sweb/status must report the pool fields.
  a->close();
  b->close();
  ASSERT_TRUE(
      eventually([&cluster] { return cluster.node(0).workers_busy() == 0; }));
  const auto status = fetch("http://127.0.0.1:" +
                            std::to_string(cluster.port(0)) + "/sweb/status");
  ASSERT_TRUE(status.has_value());
  const std::string& body = status->response.body;
  EXPECT_NE(body.find("\"workers\":1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"shed\":1"), std::string::npos) << body;
  EXPECT_NE(body.find("\"queue_depth\":"), std::string::npos) << body;
  EXPECT_NE(body.find("\"workers_busy\":"), std::string::npos) << body;
}

TEST(WorkerPool, StopDrainsPromptlyWithIdleKeepAliveConnection) {
  // A keep-alive client parked between requests holds a worker in its
  // read-wait; stop() must interrupt that wait via the stop token instead
  // of burning the full io_timeout.
  MiniClusterOptions options;
  options.max_workers = 2;
  options.io_timeout = 10000ms;
  auto cluster =
      std::make_unique<MiniCluster>(1, small_docbase(1), options);
  cluster->start();
  const std::uint16_t port = cluster->port(0);

  auto stream = TcpStream::connect(SocketAddress::loopback(port), 2000ms);
  ASSERT_TRUE(stream.has_value());
  http::Request request;
  request.target = "/docs/file0.html";
  request.headers.add("Connection", "Keep-Alive");
  ASSERT_TRUE(stream->write_all(request.serialize(), 2000ms));
  const http::Response response = read_response(*stream);
  EXPECT_EQ(http::code(response.status), 200);
  // The server is now waiting for our next request (up to io_timeout=10s).
  const auto start = std::chrono::steady_clock::now();
  cluster->stop();
  EXPECT_LT(std::chrono::steady_clock::now() - start, 2000ms);
}

TEST(WorkerPool, SingleWorkerStillServesSequentially) {
  // max_workers=1 degenerates to the old serial behaviour — everything
  // still works, just without overlap.
  MiniClusterOptions options;
  options.max_workers = 1;
  MiniCluster cluster(1, small_docbase(1), options);
  cluster.start();
  for (int i = 0; i < 4; ++i) {
    const auto result = fetch("http://127.0.0.1:" +
                              std::to_string(cluster.port(0)) + "/docs/file" +
                              std::to_string(i) + ".html");
    ASSERT_TRUE(result.has_value());
    EXPECT_EQ(http::code(result->response.status), 200);
  }
}

}  // namespace
}  // namespace sweb::runtime
