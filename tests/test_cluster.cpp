#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include "cluster/config.h"
#include "sim/simulation.h"
#include "util/config.h"

namespace sweb::cluster {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  sim::Simulation sim;
};

TEST_F(ClusterTest, MeikoPresetShape) {
  const ClusterConfig cfg = meiko_config(6);
  EXPECT_EQ(cfg.num_nodes(), 6);
  EXPECT_EQ(cfg.network, NetworkKind::kPointToPoint);
  EXPECT_DOUBLE_EQ(cfg.nfs_penalty, 0.10);
  EXPECT_DOUBLE_EQ(cfg.nodes[0].disk_bytes_per_sec, 5.0e6);  // b1 = 5 MB/s
}

TEST_F(ClusterTest, NowPresetShape) {
  const ClusterConfig cfg = now_config(4);
  EXPECT_EQ(cfg.num_nodes(), 4);
  EXPECT_EQ(cfg.network, NetworkKind::kSharedBus);
  EXPECT_LT(cfg.bus_bytes_per_sec, 2e6);  // a shared 10 Mb/s Ethernet
}

TEST_F(ClusterTest, LocalReadRunsAtDiskBandwidth) {
  Cluster clu(sim, meiko_config(2));
  double done = -1.0;
  clu.read_local(0, 5.0e6, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 1.0, 1e-9);
}

TEST_F(ClusterTest, RemoteReadPaysNfsPenalty) {
  Cluster clu(sim, meiko_config(2));
  double done = -1.0;
  clu.read_remote(0, 1, 4.5e6, [&] { done = sim.now(); });
  sim.run();
  // Rate cap = 5 MB/s * 0.9 = 4.5 MB/s => exactly 1 s for 4.5 MB.
  EXPECT_NEAR(done, 1.0, 1e-9);
}

TEST_F(ClusterTest, CpuBurstAccountsToCategory) {
  Cluster clu(sim, meiko_config(1));
  bool done = false;
  clu.cpu_burst(0, CpuUse::kParse, 40e6, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_NEAR(sim.now(), 1.0, 1e-9);  // 40e6 ops at 40 MIPS
  EXPECT_DOUBLE_EQ(clu.cpu_accounting(0).of(CpuUse::kParse), 40e6);
  EXPECT_DOUBLE_EQ(clu.cpu_accounting(0).of(CpuUse::kFulfill), 0.0);
  EXPECT_DOUBLE_EQ(clu.cpu_accounting(0).total(), 40e6);
}

TEST_F(ClusterTest, SharedBusCouplesNfsAndClientTraffic) {
  ClusterConfig cfg = now_config(2);
  cfg.bus_bytes_per_sec = 1.0e6;
  Cluster clu(sim, cfg);
  const ClientLinkId link = clu.add_client_link("lan", 10e6, 1e-3);
  double nfs_done = -1.0, send_done = -1.0;
  // Both flows fight over the single 1 MB/s bus.
  clu.read_remote(0, 1, 0.5e6, [&] { nfs_done = sim.now(); });
  clu.send_external(0, link, 0.5e6, [&] { send_done = sim.now(); });
  sim.run();
  // Fair share 0.5 MB/s each -> both need ~1 s (not 0.5 s).
  EXPECT_NEAR(nfs_done, 1.0, 0.01);
  EXPECT_NEAR(send_done, 1.0, 0.01);
}

TEST_F(ClusterTest, FatTreeKeepsDisjointPairsIndependent) {
  Cluster clu(sim, meiko_config(4));
  double a = -1.0, b = -1.0;
  clu.read_remote(0, 1, 4.5e6, [&] { a = sim.now(); });
  clu.read_remote(2, 3, 4.5e6, [&] { b = sim.now(); });
  sim.run();
  // Disjoint node pairs: no shared resource, both take exactly 1 s.
  EXPECT_NEAR(a, 1.0, 1e-9);
  EXPECT_NEAR(b, 1.0, 1e-9);
}

TEST_F(ClusterTest, ClientLinkCapsDelivery) {
  Cluster clu(sim, meiko_config(1));
  const ClientLinkId slow = clu.add_client_link("modem", 1e5, 50e-3);
  double done = -1.0;
  clu.send_external(0, slow, 1e5, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(clu.client_latency(slow), 50e-3);
  EXPECT_DOUBLE_EQ(clu.client_bandwidth(slow), 1e5);
}

TEST_F(ClusterTest, MemoryPressureThrashesCapacities) {
  ClusterConfig cfg = meiko_config(1);
  cfg.thrash_exponent = 1.0;
  Cluster clu(sim, cfg);
  const double ram = static_cast<double>(cfg.nodes[0].ram_bytes);
  clu.reserve_memory(0, 2.0 * ram);  // 2x overcommit
  EXPECT_NEAR(clu.memory_pressure(0), 2.0, 1e-9);
  double done = -1.0;
  clu.cpu_burst(0, CpuUse::kOther, 40e6, [&] { done = sim.now(); });
  sim.run();
  // Thrash factor 0.5 => the 1 s burst takes 2 s.
  EXPECT_NEAR(done, 2.0, 1e-6);
  clu.release_memory(0, 2.0 * ram);
  EXPECT_DOUBLE_EQ(clu.committed_bytes(0), 0.0);
}

TEST_F(ClusterTest, ReleaseBelowZeroClamps) {
  Cluster clu(sim, meiko_config(1));
  clu.release_memory(0, 1e9);
  EXPECT_DOUBLE_EQ(clu.committed_bytes(0), 0.0);
}

TEST_F(ClusterTest, UnavailableNodeStallsWorkUntilRejoin) {
  Cluster clu(sim, meiko_config(2));
  double done = -1.0;
  clu.read_local(0, 5.0e6, [&] { done = sim.now(); });
  sim.schedule_at(0.5, [&] { clu.set_available(0, false); });
  sim.schedule_at(10.0, [&] { clu.set_available(0, true); });
  sim.run();
  EXPECT_NEAR(done, 10.5, 1e-6);
  EXPECT_TRUE(clu.available(0));
}

TEST_F(ClusterTest, LoadObservationsReflectActivity) {
  Cluster clu(sim, meiko_config(1));
  EXPECT_DOUBLE_EQ(clu.cpu_run_queue(0), 0.0);
  EXPECT_EQ(clu.disk_queue(0), 0);
  clu.cpu_burst(0, CpuUse::kOther, 1e9, [] {});
  clu.cpu_burst(0, CpuUse::kOther, 1e9, [] {});
  clu.read_local(0, 1e9, [] {});
  EXPECT_DOUBLE_EQ(clu.cpu_run_queue(0), 2.0);
  EXPECT_EQ(clu.disk_queue(0), 1);
  EXPECT_NEAR(clu.cpu_utilization(0), 1.0, 1e-9);
  EXPECT_NEAR(clu.disk_utilization(0), 1.0, 1e-9);
}

TEST_F(ClusterTest, LoadAverageLagsInstantaneousQueue) {
  Cluster clu(sim, meiko_config(1));
  EXPECT_DOUBLE_EQ(clu.cpu_load_average(0), 0.0);
  clu.cpu_burst(0, CpuUse::kOther, 40e6 * 100, [] {});  // 100 s of work
  clu.cpu_burst(0, CpuUse::kOther, 40e6 * 100, [] {});
  // Immediately after arrival the average is still near zero...
  EXPECT_LT(clu.cpu_load_average(0), 0.5);
  // ...but converges toward the instantaneous queue (2) over a few tau.
  sim.schedule_at(30.0, [&] {
    EXPECT_NEAR(clu.cpu_load_average(0), 2.0, 0.05);
  });
  sim.run_until(30.0);
}

TEST_F(ClusterTest, SendInternalIncursLatencyAndTransfer) {
  Cluster clu(sim, meiko_config(2));
  double done = -1.0;
  clu.send_internal(0, 1, 6.0e6, [&] { done = sim.now(); });
  sim.run();
  // 0.3 ms latency + 6 MB over the 6 MB/s NICs = ~1.0003 s.
  EXPECT_NEAR(done, 1.0 + 0.3e-3, 1e-6);
}

TEST_F(ClusterTest, ConfigFileRoundTrip) {
  const util::Config file = util::Config::parse(R"(
[cluster]
name = test-cluster
network = ethernet
bus_mbps = 1.25
nfs_penalty = 0.5
[node]
count = 3
cpu_mops = 25
ram_mb = 16
disk_mbps = 2.5
max_connections = 12
)");
  const ClusterConfig cfg = cluster_from_config(file);
  EXPECT_EQ(cfg.name, "test-cluster");
  EXPECT_EQ(cfg.network, NetworkKind::kSharedBus);
  EXPECT_DOUBLE_EQ(cfg.bus_bytes_per_sec, 1.25e6);
  EXPECT_EQ(cfg.num_nodes(), 3);
  EXPECT_DOUBLE_EQ(cfg.nodes[2].cpu_ops_per_sec, 25e6);
  EXPECT_EQ(cfg.nodes[0].max_connections, 12);
}

TEST_F(ClusterTest, ConfigFileErrors) {
  EXPECT_THROW(cluster_from_config(util::Config::parse(
                   "[cluster]\nnetwork = token-ring\n[node]\n")),
               util::ConfigError);
  EXPECT_THROW(
      cluster_from_config(util::Config::parse("[cluster]\nname = x\n")),
      util::ConfigError);  // no nodes
  EXPECT_THROW(cluster_from_config(util::Config::parse(
                   "[cluster]\n[node]\ncount = 0\n")),
               util::ConfigError);
}

}  // namespace
}  // namespace sweb::cluster
