#include "workload/closed_loop.h"

#include <gtest/gtest.h>

namespace sweb::workload {
namespace {

ExperimentSpec base_spec(int nodes, std::uint64_t file_size) {
  ExperimentSpec spec;
  spec.cluster = cluster::meiko_config(nodes);
  spec.docbase =
      fs::make_uniform(64, file_size, nodes, fs::Placement::kRoundRobin);
  spec.clients = ucsb_clients();
  spec.policy = "sweb";
  spec.seed = 77;
  return spec;
}

TEST(ClosedLoop, UsersCycleThroughRequests) {
  ClosedLoopSpec loop;
  loop.num_clients = 8;
  loop.think_mean_s = 0.5;
  loop.duration_s = 20.0;
  const auto r = run_closed_loop(base_spec(4, 64 * 1024), loop);
  // 8 users at ~(response + 0.5s think) per cycle: well over one request
  // per user, all completed.
  EXPECT_GT(r.requests_issued, 8u * 10u);
  EXPECT_EQ(r.summary.completed, r.summary.total);
  EXPECT_EQ(r.stalled_clients, 0u);
  EXPECT_GT(r.throughput_rps, 4.0);
}

TEST(ClosedLoop, ThroughputSelfThrottlesUnderOverload) {
  // 1.5 MB files on one node: capacity ~3 rps. A closed loop with many
  // users cannot exceed it, and (unlike the open loop) drops little.
  ClosedLoopSpec loop;
  loop.num_clients = 24;
  loop.think_mean_s = 0.5;
  loop.duration_s = 30.0;
  const auto closed = run_closed_loop(base_spec(1, 1536 * 1024), loop);
  EXPECT_LE(closed.throughput_rps, 4.5);
  EXPECT_GT(closed.throughput_rps, 1.0);
  // Per-user latency stays bounded: each user has at most one request in
  // flight, so the queue never exceeds the user count.
  EXPECT_LT(closed.summary.p95_response, 30.0);
  EXPECT_LT(closed.summary.drop_rate(), 0.05);
}

TEST(ClosedLoop, MoreUsersMoreThroughputUntilSaturation) {
  ClosedLoopSpec small;
  small.num_clients = 2;
  small.think_mean_s = 0.2;
  small.duration_s = 15.0;
  ClosedLoopSpec large = small;
  large.num_clients = 16;
  const auto few = run_closed_loop(base_spec(4, 64 * 1024), small);
  const auto many = run_closed_loop(base_spec(4, 64 * 1024), large);
  EXPECT_GT(many.throughput_rps, few.throughput_rps * 2.0);
}

TEST(ClosedLoop, DeadNodeStallsItsPinnedUsers) {
  ExperimentSpec spec = base_spec(3, 64 * 1024);
  spec.cluster.request_timeout_s = 3600.0;  // patient users: stalls visible
  // Keep node 1's disk out of the docbase: otherwise its death hangs any
  // server that NFS-reads its content, and *every* user stalls.
  fs::Docbase no_node1;
  for (fs::Document d : spec.docbase.documents()) {
    if (d.owner == 1) d.owner = 0;
    no_node1.add(std::move(d));
  }
  spec.docbase = no_node1;
  spec.on_start = [](core::SwebServer& server, sim::Simulation& sim) {
    // Kill node 1 after the users' DNS caches have pinned to nodes.
    sim.schedule_at(5.0, [&server] { server.set_node_available(1, false); });
  };
  ClosedLoopSpec loop;
  loop.num_clients = 6;
  loop.think_mean_s = 0.5;
  loop.duration_s = 30.0;
  const auto r = run_closed_loop(spec, loop);
  // The users whose domain cached node 1 issue a request into the void and
  // never come back; the rest keep cycling.
  EXPECT_GT(r.stalled_clients, 0u);
  EXPECT_LT(r.stalled_clients, 6u);
  EXPECT_GT(r.summary.completed, 0u);
}

TEST(ClosedLoop, HealthyClusterLeavesNoStalledUsers) {
  ClosedLoopSpec loop;
  loop.num_clients = 6;
  loop.think_mean_s = 0.5;
  loop.duration_s = 15.0;
  const auto r = run_closed_loop(base_spec(3, 64 * 1024), loop);
  EXPECT_EQ(r.stalled_clients, 0u);
}

}  // namespace
}  // namespace sweb::workload
