#include "metrics/csv.h"

#include <gtest/gtest.h>

namespace sweb::metrics {
namespace {

TEST(CsvEscape, PlainFieldsPassThrough) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape("123.45"), "123.45");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, QuotesSpecialFields) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvWriter, HeaderAndRows) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"1", "x,y"});
  csv.add_row({"2", "z"});
  EXPECT_EQ(csv.to_string(), "a,b\n1,\"x,y\"\n2,z\n");
  EXPECT_EQ(csv.rows(), 2u);
}

TEST(RecordsCsv, OneRowPerRequestWithPhases) {
  std::vector<RequestRecord> records;
  RequestRecord r;
  r.id = 7;
  r.path = "/adl/scene.tiff";
  r.size_bytes = 1536 * 1024;
  r.outcome = Outcome::kCompleted;
  r.status_code = 200;
  r.first_node = 0;
  r.final_node = 2;
  r.redirected = true;
  r.start = 1.0;
  r.finish = 3.5;
  r.t_data = 0.3;
  records.push_back(r);
  RequestRecord dropped;
  dropped.id = 8;
  dropped.path = "/x";
  dropped.outcome = Outcome::kRefused;
  records.push_back(dropped);

  const std::string out = records_csv(records).to_string();
  EXPECT_NE(out.find("id,path,size_bytes,outcome"), std::string::npos);
  EXPECT_NE(out.find("7,/adl/scene.tiff"), std::string::npos);
  EXPECT_NE(out.find("completed"), std::string::npos);
  EXPECT_NE(out.find("refused"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);  // response time
}

TEST(RecordsCsv, IncompleteRequestsHaveEmptyFinish) {
  std::vector<RequestRecord> records;
  RequestRecord r;
  r.id = 1;
  r.path = "/p";
  r.outcome = Outcome::kTimedOut;
  records.push_back(r);
  const std::string out = records_csv(records).to_string();
  // "...,timed_out,...,0,,," — finish and response cells empty.
  EXPECT_NE(out.find("timed_out"), std::string::npos);
  EXPECT_NE(out.find(",,"), std::string::npos);
}

TEST(SummaryCsv, SingleRowWithRates) {
  Summary s;
  s.total = 100;
  s.completed = 90;
  s.refused = 10;
  s.mean_response = 2.5;
  const std::string out = summary_csv(s).to_string();
  EXPECT_NE(out.find("total,completed"), std::string::npos);
  EXPECT_NE(out.find("100,90,10"), std::string::npos);
  EXPECT_NE(out.find("0.1"), std::string::npos);  // drop rate
}

}  // namespace
}  // namespace sweb::metrics
