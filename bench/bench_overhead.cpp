// §4.3 server-side overhead: how much CPU SWEB's own machinery costs.
//
// Paper: "in processing requests for files of sizes 1.5MB when 16 rps,
// 4.4% of CPU cycles are used for parsing the HTML commands, but less than
// 0.01% time is used for collecting load information and making scheduling
// decisions. Approximately 0.2% of the available CPU is used for load
// monitoring." Small files (1K) were also tested with the same conclusion.
#include "bench_common.h"

namespace {

using namespace sweb;

void emit(std::uint64_t file_size, const char* label) {
  workload::ExperimentSpec spec = bench::meiko_spec(
      6, file_size, file_size >= 1024 * 1024 ? 240 : 600);
  spec.policy = "sweb";
  spec.burst.rps = 16.0;
  spec.burst.duration_s = 30.0;
  const auto r = workload::run_experiment(spec);

  std::printf("%s (16 rps, 30 s, 6 nodes):\n", label);
  metrics::Table table({"CPU activity", "share of capacity", "paper"});
  table.add_row({"request parsing / preprocessing",
                 metrics::fmt_pct(r.cpu_fraction(cluster::CpuUse::kParse), 2),
                 file_size >= 1024 * 1024 ? "4.4%" : "-"});
  table.add_row({"scheduling decisions (broker)",
                 metrics::fmt_pct(r.cpu_fraction(cluster::CpuUse::kSchedule), 3),
                 "<0.01% (+monitoring)"});
  table.add_row({"redirect generation",
                 metrics::fmt_pct(r.cpu_fraction(cluster::CpuUse::kRedirect), 3),
                 "-"});
  table.add_row({"load monitoring (loadd)",
                 metrics::fmt_pct(r.cpu_fraction(cluster::CpuUse::kLoadd), 3),
                 "~0.2%"});
  table.add_row({"fulfillment (fork/read/marshal)",
                 metrics::fmt_pct(r.cpu_fraction(cluster::CpuUse::kFulfill), 2),
                 "-"});
  std::printf("%s", table.render().c_str());
  std::printf("loadd broadcasts sent: %llu\n\n",
              static_cast<unsigned long long>(r.loadd_broadcasts));
}

}  // namespace

int main() {
  using namespace sweb;
  bench::print_header(
      "§4.3 overhead", "Server-side CPU overhead of SWEB's machinery",
      "CPU operations are accounted per activity on every node; shares are "
      "relative to total CPU capacity over the experiment.");
  emit(1536 * 1024, "1.5 MB files");
  emit(1024, "1 KB files");
  bench::print_note(
      "expected shape: fulfillment and parsing dominate; scheduling + load "
      "monitoring stay well under 1% of capacity — the paper's claim that "
      "SWEB's adaptivity is essentially free.");
  return 0;
}
