// Microbenchmarks (google-benchmark): the engine costs behind the
// experiments, and the Figure-1 transaction stages.
//
// These measure *our* implementation on the host machine (not the 1996
// hardware): event-queue throughput, max-min reallocation, HTTP parsing,
// broker decisions, DNS rotation, page-cache operations.
#include <benchmark/benchmark.h>

#include "cluster/cluster.h"
#include "cluster/config.h"
#include "core/broker.h"
#include "core/load.h"
#include "core/oracle.h"
#include "core/server.h"
#include "dns/dns.h"
#include "fs/page_cache.h"
#include "http/parser.h"
#include "http/url.h"
#include "sim/flow_network.h"
#include "sim/simulation.h"

namespace {

using namespace sweb;

void BM_EventScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule_at(static_cast<double>(i % 100), [] {});
    }
    sim.run();
    benchmark::DoNotOptimize(sim.executed());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventScheduleRun);

void BM_FlowReallocation(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    sim::FlowNetwork net(sim);
    const auto r = net.add_resource("r", 1e6);
    for (int i = 0; i < flows; ++i) {
      net.start_flow({r}, 1e9, [] {});  // every start reallocates all flows
    }
    benchmark::DoNotOptimize(net.allocated_rate(r));
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowReallocation)->Arg(16)->Arg(64)->Arg(256);

void BM_HttpParseRequest(benchmark::State& state) {
  const std::string wire =
      "GET /adl/scene42.tiff?zoom=2 HTTP/1.0\r\n"
      "Host: www.alexandria.ucsb.edu\r\n"
      "User-Agent: Mosaic/2.7\r\n"
      "Accept: */*\r\n\r\n";
  for (auto _ : state) {
    http::RequestParser parser;
    std::size_t consumed = 0;
    const auto result = parser.feed(wire, consumed);
    benchmark::DoNotOptimize(result);
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_HttpParseRequest);

void BM_CanonicalizeTarget(benchmark::State& state) {
  for (auto _ : state) {
    auto url = http::canonicalize_target(
        "/adl/maps/../scenes/./goleta%20east.tiff?layer=3");
    benchmark::DoNotOptimize(url);
  }
}
BENCHMARK(BM_CanonicalizeTarget);

void BM_BrokerChoose(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  sim::Simulation sim;
  cluster::Cluster clu(sim, cluster::meiko_config(p));
  core::Broker broker(clu, core::BrokerParams{});
  core::LoadBoard board(p, 6.0);
  for (int n = 0; n < p; ++n) {
    core::LoadVector v;
    v.cpu_run_queue = n % 3;
    v.disk_queue = n % 2;
    v.timestamp = 0.0;
    board.update(n, v);
  }
  core::RequestFacts facts;
  facts.size_bytes = 1.5e6;
  facts.owner = p - 1;
  facts.cpu_ops = 1.2e6;
  facts.client_latency_s = 1.5e-3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(broker.choose(facts, 0, board));
  }
}
BENCHMARK(BM_BrokerChoose)->Arg(6)->Arg(16)->Arg(64);

void BM_DnsRotation(benchmark::State& state) {
  dns::AuthoritativeServer dns;
  dns.set_records("www", {0, 1, 2, 3, 4, 5}, 1800.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dns.query("www"));
  }
}
BENCHMARK(BM_DnsRotation);

void BM_PageCacheLookupInsert(benchmark::State& state) {
  fs::PageCache cache(64 * 1024 * 1024);
  int i = 0;
  for (auto _ : state) {
    const std::string path = "/doc" + std::to_string(i % 512);
    if (!cache.lookup(path)) cache.insert(path, 256 * 1024);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageCacheLookupInsert);

// Figure 1's transaction stages, timed end-to-end in the simulator: one
// client, one request, from DNS to last byte.
void BM_Figure1Transaction(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    util::Rng rng(1);
    cluster::Cluster clu(sim, cluster::meiko_config(2));
    fs::Docbase docs =
        fs::make_uniform(4, 64 * 1024, 2, fs::Placement::kRoundRobin);
    const auto link = clu.add_client_link("lan", 3e6, 1.5e-3);
    core::SwebServer server(clu, docs, core::Oracle::builtin(),
                            core::make_policy("sweb"), core::ServerParams{},
                            rng);
    server.start();
    server.client_request(link, docs.documents()[0].path);
    sim.run_until(10.0);
    benchmark::DoNotOptimize(server.collector().summarize().completed);
  }
}
BENCHMARK(BM_Figure1Transaction);

}  // namespace

BENCHMARK_MAIN();
