// Table 3: Response time under NON-UNIFORM file sizes — Round Robin vs.
// File Locality vs. SWEB on the Meiko CS-2.
//
// Paper setup: "requests with sizes varying from short, approximately 100
// bytes, to relatively long, approximately 1.5MB", 30 s duration, 0% drop
// rate, Meiko CS-2. "For lightly loaded systems, SWEB performs comparably
// with the others. For heavily loaded systems (rps >= 20), SWEB has an
// advantage of 15-60% over round robin and file locality."
//
// The paper also reports the Rutgers (east-coast) variant: "a performance
// gain of over 10% using file locality instead of round robin ... in spite
// of the poor bandwidth and long latency"; printed as a second table.
#include "bench_common.h"

namespace {

using namespace sweb;

workload::ExperimentResult run_cell(const char* policy, double rps,
                                    const workload::ClientSpec& clients) {
  util::Rng doc_rng(17);
  workload::ExperimentSpec spec;
  spec.cluster = cluster::meiko_config(6);
  // Byte-uniform sizes (mean ~750 KB): real aggregate load with large
  // request-to-request variance, so the DNS assignment is heterogeneous.
  spec.docbase = fs::make_nonuniform(480, 100, 1536 * 1024, 6,
                                     fs::Placement::kRoundRobin, doc_rng,
                                     fs::SizeDistribution::kUniform);
  // Popularity-skewed selection: the hot documents' owner nodes become the
  // heterogeneous load the paper describes ("the load distribution between
  // processors by the initial DNS assignment is heterogeneous").
  spec.mix.kind = workload::MixSpec::Kind::kZipf;
  spec.mix.zipf_exponent = 1.4;
  spec.clients = clients;
  spec.policy = policy;
  spec.burst.rps = rps;
  spec.burst.duration_s = 30.0;
  return workload::run_experiment(spec);
}

}  // namespace

int main() {
  bench::print_header(
      "Table 3", "Non-uniform requests (100 B .. 1.5 MB), Meiko CS-2",
      "Byte-uniform file-size mix with Zipf(1.4) popularity, 30 s bursts, "
      "6 nodes. Mean response time in seconds per policy as the offered "
      "rate grows; the hot documents' owners are the heterogeneous load.");

  const double rates[] = {8, 16, 20, 24, 32};
  metrics::Table table({"rps", "Round Robin", "File Locality", "SWEB",
                        "SWEB vs best baseline"});
  for (double rps : rates) {
    const auto rr = run_cell("round-robin", rps, workload::ucsb_clients());
    const auto fl = run_cell("file-locality", rps, workload::ucsb_clients());
    const auto sw = run_cell("sweb", rps, workload::ucsb_clients());
    const double best_baseline =
        std::min(rr.summary.mean_response, fl.summary.mean_response);
    const double gain =
        best_baseline > 0.0
            ? (best_baseline - sw.summary.mean_response) / best_baseline
            : 0.0;
    table.add_row({metrics::fmt(rps, 0),
                   bench::seconds_cell(rr.summary.mean_response),
                   bench::seconds_cell(fl.summary.mean_response),
                   bench::seconds_cell(sw.summary.mean_response),
                   metrics::fmt_pct(gain)});
  }
  std::printf("%s", table.render().c_str());
  bench::print_note(
      "paper: comparable when lightly loaded; SWEB ahead 15-60% of the "
      "baselines once rps >= 20.");

  // East-coast clients (Rutgers) against the *Ethernet-linked* (NOW)
  // server — the paper: "a performance gain of over 10% using file
  // locality instead of round robin from an Ethernet-linked server, in
  // spite of the poor bandwidth and long latency".
  std::printf("\nEast-coast clients (Rutgers) against the NOW server, "
              "1 rps for 30 s:\n");
  const auto run_wan = [](const char* policy) {
    util::Rng doc_rng(17);
    workload::ExperimentSpec spec;
    spec.cluster = cluster::now_config(4);
    spec.docbase = fs::make_nonuniform(120, 100, 1536 * 1024, 4,
                                       fs::Placement::kRoundRobin, doc_rng,
                                       fs::SizeDistribution::kUniform);
    spec.clients = workload::rutgers_clients();
    spec.policy = policy;
    spec.burst.rps = 1.0;
    spec.burst.duration_s = 30.0;
    spec.drain_s = 300.0;
    return workload::run_experiment(spec);
  };
  const auto rr = run_wan("round-robin");
  const auto fl = run_wan("file-locality");
  metrics::Table wan({"policy", "mean response", "gain vs RR"});
  wan.add_row({"Round Robin", bench::seconds_cell(rr.summary.mean_response),
               "-"});
  const double gain = (rr.summary.mean_response - fl.summary.mean_response) /
                      rr.summary.mean_response;
  wan.add_row({"File Locality", bench::seconds_cell(fl.summary.mean_response),
               metrics::fmt_pct(gain)});
  std::printf("%s", wan.render().c_str());
  bench::print_note("paper: >10% gain for file locality over round robin "
                    "from the east coast.");
  return 0;
}
