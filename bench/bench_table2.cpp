// Table 2: Response times and drop rates as the number of server nodes
// grows.
//
// Paper setup: Meiko CS-2 at 16 rps for 30 s (1, 2, 4, 6 nodes); NOW at
// 16 rps for 1 K files and 8 rps for 1.5 MB files (1, 2, 4 nodes). Time is
// the client-observed average over all completed requests.
//
// Paper reference values:
//   * Meiko 1.5M drop rates: 37.3% (1 node), 5.0% (2), 3.5% (4), 3.5% (6)
//   * NOW 1.5M: single server timed out entirely (*); 20.5% (2), 0% (4)
//   * 1K: 0% drops everywhere; response flat beyond 2 nodes
//   * superlinear speedup on 1.5M from aggregate memory caching
#include "bench_common.h"

namespace {

using namespace sweb;

workload::ExperimentResult run_cell(bool meiko, int nodes,
                                    std::uint64_t file_size, double rps) {
  const std::size_t docs = file_size >= 1024 * 1024 ? (meiko ? 240 : 80) : 600;
  workload::ExperimentSpec spec =
      meiko ? bench::meiko_spec(nodes, file_size, docs)
            : bench::now_spec(nodes, file_size, docs);
  spec.policy = "sweb";
  spec.burst.rps = rps;
  spec.burst.duration_s = 30.0;
  if (!meiko) {
    // The paper's NOW clients waited out arbitrarily long drains (only the
    // single-server test "timed out after no responses were received"), so
    // drops on the NOW are refused connections, not impatience.
    spec.cluster.request_timeout_s = 3600.0;
    spec.drain_s = 2500.0;
  }
  return workload::run_experiment(spec);
}

void emit(bool meiko, const std::vector<int>& node_counts,
          double rps_small, double rps_large) {
  metrics::Table table({"#nodes", "1K time", "1K drop", "1.5M time",
                        "1.5M drop"});
  for (int nodes : node_counts) {
    const auto small = run_cell(meiko, nodes, 1024, rps_small);
    const auto large = run_cell(meiko, nodes, 1536 * 1024, rps_large);
    const auto time_cell = [](const workload::ExperimentResult& r) {
      if (r.summary.completed == 0) return std::string("timeout*");
      // Means beyond a few minutes were "timed out" to the paper's users.
      if (r.summary.mean_response > 200.0) {
        return bench::seconds_cell(r.summary.mean_response) + " s*";
      }
      return bench::seconds_cell(r.summary.mean_response) + " s";
    };
    table.add_row({std::to_string(nodes), time_cell(small),
                   metrics::fmt_pct(small.summary.drop_rate()),
                   time_cell(large),
                   metrics::fmt_pct(large.summary.drop_rate())});
  }
  std::printf("%s", table.render().c_str());
}

}  // namespace

int main() {
  bench::print_header(
      "Table 2", "Response time and drop rate vs. number of nodes",
      "30 s bursts, SWEB scheduling. Meiko: 16 rps for both file sizes. "
      "NOW: 16 rps for 1K, 8 rps for 1.5MB (the paper's rates). Time is "
      "the mean client-observed response over completed requests.");

  std::printf("Meiko CS-2 (16 rps):\n");
  emit(/*meiko=*/true, {1, 2, 4, 6}, 16.0, 16.0);
  std::printf(
      "paper: 1.5M drops 37.3%% / 5.0%% / 3.5%% / 3.5%%; 1K drops all 0%%;\n"
      "       1K response flat beyond 2 nodes; superlinear 1.5M speedup.\n\n");

  std::printf("NOW (1K at 16 rps, 1.5M at 8 rps):\n");
  emit(/*meiko=*/false, {1, 2, 4}, 16.0, 8.0);
  std::printf(
      "paper: 1.5M single server timed out (*); 20.5%% (2 nodes), 0%% (4);\n"
      "       1K drops all 0%%.\n");
  return 0;
}
