// Table 4: Uniform 1.5 MB requests on the NOW (shared Ethernet) — Round
// Robin vs. File Locality vs. SWEB.
//
// Paper: "In a relatively slow, bus-type Ethernet in a NOW environment, the
// advantage of exploiting file locality is more clear" (on the Meiko the
// three strategies tie, because the fat tree makes remote access cheap —
// that control case is printed too). Reported at 0% drop rate.
#include "bench_common.h"

namespace {

using namespace sweb;

workload::ExperimentResult run_cell(bool meiko, const char* policy,
                                    double rps) {
  // The Meiko control uses a corpus far larger than the aggregate page
  // cache (900 MB) so caching doesn't separate the strategies — on the fat
  // tree the paper found all three "have similar performance".
  workload::ExperimentSpec spec =
      meiko ? bench::meiko_spec(6, 1536 * 1024, 1200)
            : bench::now_spec(4, 1536 * 1024, 80);
  spec.policy = policy;
  spec.burst.rps = rps;
  spec.burst.duration_s = 30.0;
  spec.drain_s = 400.0;
  return workload::run_experiment(spec);
}

std::string cell(const workload::ExperimentResult& r) {
  if (r.summary.completed == 0) return "timeout";
  std::string out = bench::seconds_cell(r.summary.mean_response);
  if (r.summary.drop_rate() > 0.005) {
    out += " (" + metrics::fmt_pct(r.summary.drop_rate(), 0) + " drop)";
  }
  return out;
}

void emit(bool meiko, const std::vector<double>& rates) {
  metrics::Table table(
      {"rps", "Round Robin", "File Locality", "SWEB", "RR remote reads"});
  for (double rps : rates) {
    const auto rr = run_cell(meiko, "round-robin", rps);
    const auto fl = run_cell(meiko, "file-locality", rps);
    const auto sw = run_cell(meiko, "sweb", rps);
    table.add_row({metrics::fmt(rps, 0), cell(rr), cell(fl), cell(sw),
                   metrics::fmt_pct(rr.remote_read_rate)});
  }
  std::printf("%s", table.render().c_str());
}

}  // namespace

int main() {
  bench::print_header(
      "Table 4", "Uniform 1.5 MB requests on the NOW (shared Ethernet)",
      "4 SparcStation LXs on one 10 Mb/s Ethernet, 30 s bursts. Round robin "
      "drags ~3/4 of all bytes across the bus twice (NFS + send); locality "
      "and SWEB keep reads on the owner's disk.");

  std::printf("NOW (the paper's Table 4):\n");
  emit(/*meiko=*/false, {1, 2, 4});
  bench::print_note(
      "paper shape: File Locality and SWEB clearly ahead of Round Robin; "
      "the gap grows with load.");

  std::printf("\nControl: same workload on the Meiko fat tree "
              "(paper: all three strategies perform similarly):\n");
  emit(/*meiko=*/true, {8, 12});
  return 0;
}
