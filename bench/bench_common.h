// Shared helpers for the experiment benches. Each bench binary regenerates
// one of the paper's tables (or a text-reported experiment) and prints a
// side-by-side of measured values and the paper's reference where known.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>

#include "cluster/config.h"
#include "fs/docbase.h"
#include "metrics/table.h"
#include "obs/json.h"
#include "util/rng.h"
#include "workload/scenario.h"

namespace sweb::bench {

inline void print_header(const char* id, const char* title,
                         const char* method) {
  std::printf("\n==================================================================\n");
  std::printf("%s — %s\n", id, title);
  std::printf("------------------------------------------------------------------\n");
  std::printf("%s\n\n", method);
}

inline void print_note(const char* note) { std::printf("note: %s\n", note); }

/// Baseline experiment spec for the Meiko CS-2 testbed.
inline workload::ExperimentSpec meiko_spec(int nodes, std::uint64_t file_size,
                                           std::size_t num_docs) {
  workload::ExperimentSpec spec;
  spec.cluster = cluster::meiko_config(nodes);
  spec.docbase = fs::make_uniform(num_docs, file_size, nodes,
                                  fs::Placement::kRoundRobin);
  spec.clients = workload::ucsb_clients();
  return spec;
}

/// Baseline experiment spec for the NOW testbed.
inline workload::ExperimentSpec now_spec(int nodes, std::uint64_t file_size,
                                         std::size_t num_docs) {
  workload::ExperimentSpec spec;
  spec.cluster = cluster::now_config(nodes);
  spec.docbase = fs::make_uniform(num_docs, file_size, nodes,
                                  fs::Placement::kRoundRobin);
  spec.clients = workload::ucsb_clients();
  return spec;
}

/// Validates `json` under the strict checker and writes it (one trailing
/// newline) to `path`. The machine-readable BENCH_*.json trajectory is
/// diffed across PRs, so a malformed report must fail loudly, not land.
inline bool write_json_report(const std::string& path,
                              const std::string& json) {
  if (!obs::json_is_valid(json)) {
    std::fprintf(stderr, "refusing to write %s: report is not valid JSON\n",
                 path.c_str());
    return false;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  out << json << '\n';
  if (!out.good()) return false;
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// "<1" for a zero result, the number otherwise (Table 1's NOW cells).
inline std::string rps_cell(int rps) {
  return rps == 0 ? std::string("<1") : std::to_string(rps);
}

inline std::string seconds_cell(double s) { return metrics::fmt(s, 2); }

}  // namespace sweb::bench
