// PR9 — epoll reactor concurrency sweep.
//
// The pooled runtime parked one worker thread per connection, so a node's
// admission bound was max_workers + max_pending (48 by default): ten
// thousand keep-alive connections were simply impossible. The reactor
// multiplexes every connection onto one event loop, so idle keep-alive
// sockets cost an epoll registration and a timer-heap entry, not a thread.
//
// Two scenarios land in BENCH_PR9.json:
//   baseline          — one-node closed loop with the per-phase breakdown,
//                       directly comparable to the PR6/PR8 trajectory.
//   concurrency_sweep — the same closed-loop request load measured twice:
//                       against a pool-bounded node (max_connections = 48,
//                       the old admission cap) and against a reactor node
//                       already holding >= 10k established keep-alive
//                       connections. The claim under test: p99 stays
//                       bounded — parked connections are not load.
//
// The container caps open files at 20000, so one process cannot hold both
// ends of 10k sockets plus the server's own: the idle herd is split across
// forked child processes (client ends) while the parent keeps the server
// (accept ends). Children are forked before the cluster starts any thread.
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "fs/docbase.h"
#include "obs/json.h"
#include "obs/phase.h"
#include "obs/registry.h"
#include "runtime/client.h"
#include "runtime/mini_cluster.h"
#include "runtime/socket.h"

namespace {

using namespace std::chrono_literals;
namespace bench = sweb::bench;
namespace fs = sweb::fs;
namespace obs = sweb::obs;
namespace runtime = sweb::runtime;

constexpr int kIdleChildren = 5;
constexpr int kIdleConnsPerChild = 2016;  // 10080 total: margin over 10k
constexpr int kIdleTarget = 10000;
constexpr int kLoadSessions = 16;
constexpr int kLoadPerSession = 250;
constexpr int kDocCount = 16;
constexpr std::uint64_t kDocBytes = 8192;

std::string doc_url(std::uint16_t port, int ordinal) {
  return "http://127.0.0.1:" + std::to_string(port) + "/docs/file" +
         std::to_string(ordinal % kDocCount) + ".html";
}

/// One complete keep-alive HTTP exchange on a raw stream: write the
/// request, read status line + headers, then Content-Length body bytes.
/// Used by the idle-herd children, which must not link a whole client.
bool complete_one_request(runtime::TcpStream& stream) {
  static const std::string kRequest =
      "GET /docs/file0.html HTTP/1.1\r\n"
      "Host: bench\r\n"
      "Connection: keep-alive\r\n"
      "\r\n";
  if (!stream.write_all(kRequest, 5000ms)) return false;
  std::string buf;
  std::size_t header_end = std::string::npos;
  std::size_t body_need = 0;
  for (;;) {
    const auto chunk = stream.read_some(16 * 1024, 5000ms);
    if (!chunk.ok) return false;
    buf += chunk.data;
    if (header_end == std::string::npos) {
      const std::size_t pos = buf.find("\r\n\r\n");
      if (pos != std::string::npos) {
        header_end = pos + 4;
        const std::size_t cl = buf.find("Content-Length:");
        if (cl != std::string::npos && cl < header_end) {
          body_need = std::strtoull(buf.c_str() + cl + 15, nullptr, 10);
        }
      }
    }
    if (header_end != std::string::npos &&
        buf.size() >= header_end + body_need) {
      return true;
    }
    if (chunk.eof) return false;
  }
}

/// Child-process body: wait for "go", establish `conns` keep-alive
/// connections (one served request each, proving they are real established
/// sessions, not half-open SYNs), report the count, then hold every socket
/// open until the parent says "stop". Exits via _exit: the child must not
/// run the parent's destructors.
[[noreturn]] void run_idle_child(std::uint16_t port, int conns, int ctl_read,
                                 int status_write) {
  char go = 0;
  while (::read(ctl_read, &go, 1) != 1) {
  }
  std::vector<runtime::TcpStream> held;
  held.reserve(static_cast<std::size_t>(conns));
  for (int i = 0; i < conns; ++i) {
    // The listener backlog is 64 and five children connect concurrently;
    // a refused attempt just backs off and retries.
    for (int attempt = 0; attempt < 5; ++attempt) {
      auto stream = runtime::TcpStream::connect(
          runtime::SocketAddress::loopback(port), 2000ms);
      if (stream && complete_one_request(*stream)) {
        held.push_back(std::move(*stream));
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20 * (attempt + 1)));
    }
  }
  const std::uint32_t established = static_cast<std::uint32_t>(held.size());
  (void)::write(status_write, &established, sizeof established);
  char stop = 0;
  while (::read(ctl_read, &stop, 1) != 1) {
  }
  ::_exit(0);
}

struct LoadResult {
  double rps = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
};

/// Fixed closed-loop request load: `num_sessions` keep-alive sessions, each
/// issuing `per_session` sequential static fetches. Both sweep points run
/// exactly this, so the only variable is the idle herd behind it.
LoadResult run_load(std::uint16_t port, int num_sessions, int per_session) {
  obs::Histogram latency_hist(obs::log_latency_bounds());
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> failed{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> sessions;
  sessions.reserve(static_cast<std::size_t>(num_sessions));
  for (int s = 0; s < num_sessions; ++s) {
    sessions.emplace_back([port, s, per_session, &latency_hist, &ok,
                           &failed] {
      runtime::FetchOptions fo;
      fo.keep_alive = true;
      runtime::FetchSession session(fo);
      for (int i = 0; i < per_session; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto result = session.fetch(doc_url(port, s * 7 + i));
        const double latency_s = std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() - t0)
                                     .count();
        if (result && sweb::http::code(result->response.status) == 200) {
          ++ok;
          latency_hist.observe(latency_s);
        } else {
          ++failed;
        }
      }
    });
  }
  for (auto& t : sessions) t.join();
  const double elapsed_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
  LoadResult out;
  out.ok = ok.load();
  out.failed = failed.load();
  out.rps = elapsed_s > 0.0 ? static_cast<double>(out.ok) / elapsed_s : 0.0;
  const auto value = obs::histogram_value(latency_hist);
  out.p50_s = obs::histogram_quantile(value, 0.50);
  out.p95_s = obs::histogram_quantile(value, 0.95);
  out.p99_s = obs::histogram_quantile(value, 0.99);
  return out;
}

struct SweepResult {
  LoadResult load;
  std::uint64_t shed = 0;
  std::uint32_t established = 0;
  int active_seen = 0;
  bool ok = false;
};

/// Forks `children_n` idle-herd processes holding `per_child` keep-alive
/// connections each against a fresh one-node cluster, then measures the
/// closed-loop load behind them. Children fork before the cluster spawns
/// any thread — forking a multithreaded process can inherit a held
/// allocator lock.
SweepResult run_idle_sweep(int children_n, int per_child, int max_conns,
                           int load_sessions, int load_per_session) {
  SweepResult out;
  runtime::MiniClusterOptions options;
  options.max_connections = max_conns;
  // The idle herd must survive the whole measurement: the keep-alive idle
  // deadline (silent close) follows header_timeout.
  options.header_timeout = 120000ms;
  const fs::Docbase docs = fs::make_uniform(
      kDocCount, kDocBytes, 1, fs::Placement::kRoundRobin, nullptr, "/docs");
  runtime::MiniCluster cluster(1, docs, options);
  const std::uint16_t port = cluster.port(0);

  struct Child {
    pid_t pid = -1;
    int ctl_write = -1;
    int status_read = -1;
  };
  std::vector<Child> children;
  for (int c = 0; c < children_n; ++c) {
    int ctl[2] = {-1, -1};
    int status[2] = {-1, -1};
    if (::pipe(ctl) != 0 || ::pipe(status) != 0) {
      std::perror("pipe");
      return out;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return out;
    }
    if (pid == 0) {
      ::close(ctl[1]);
      ::close(status[0]);
      for (const Child& sibling : children) {
        ::close(sibling.ctl_write);
        ::close(sibling.status_read);
      }
      run_idle_child(port, per_child, ctl[0], status[1]);
    }
    ::close(ctl[0]);
    ::close(status[1]);
    children.push_back({pid, ctl[1], status[0]});
  }

  cluster.start();
  for (const Child& child : children) {
    const char go = 'g';
    (void)::write(child.ctl_write, &go, 1);
  }
  // Each child reports once every one of its connections has served a
  // request; the blocking reads double as the establishment barrier.
  for (const Child& child : children) {
    std::uint32_t n = 0;
    if (::read(child.status_read, &n, sizeof n) == sizeof n) {
      out.established += n;
    }
  }
  std::printf("idle herd established: %u keep-alive connections "
              "(server sees %d)\n",
              out.established, cluster.node(0).active_connections());

  out.load = run_load(port, load_sessions, load_per_session);
  out.active_seen = cluster.node(0).active_connections();
  out.shed = cluster.node(0).shed_count();
  out.ok = true;

  for (const Child& child : children) {
    const char stop = 's';
    (void)::write(child.ctl_write, &stop, 1);
  }
  for (const Child& child : children) {
    int wstatus = 0;
    (void)::waitpid(child.pid, &wstatus, 0);
    ::close(child.ctl_write);
    ::close(child.status_read);
  }
  cluster.stop();
  return out;
}

void write_load(obs::JsonWriter& w, const LoadResult& r) {
  w.key("rps").value(r.rps);
  w.key("requests_ok").value(r.ok);
  w.key("requests_failed").value(r.failed);
  w.key("latency").begin_object();
  w.key("p50_s").value(r.p50_s);
  w.key("p95_s").value(r.p95_s);
  w.key("p99_s").value(r.p99_s);
  w.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  // `--smoke N`: CI mode — establish >= N concurrent keep-alive
  // connections against one node (typically under ASan), drive a short
  // load burst through them, and exit nonzero on any shortfall. No JSON
  // report; this is a pass/fail gate, not a trajectory point.
  if (argc == 3 && std::strcmp(argv[1], "--smoke") == 0) {
    const int target = std::atoi(argv[2]);
    if (target <= 0) {
      std::fprintf(stderr, "bad --smoke target: %s\n", argv[2]);
      return 2;
    }
    const int children = 2;
    const int per_child = (target + children - 1) / children;
    std::printf("reactor smoke: %d keep-alive connections, one node\n",
                children * per_child);
    const SweepResult smoke = run_idle_sweep(
        children, per_child, /*max_conns=*/2 * target + 64,
        /*load_sessions=*/8, /*load_per_session=*/50);
    std::printf("smoke: established %u, load ok %llu failed %llu, "
                "shed %llu\n",
                smoke.established,
                static_cast<unsigned long long>(smoke.load.ok),
                static_cast<unsigned long long>(smoke.load.failed),
                static_cast<unsigned long long>(smoke.shed));
    if (!smoke.ok || smoke.established < static_cast<std::uint32_t>(target) ||
        smoke.load.failed > 0 || smoke.shed > 0) {
      std::fprintf(stderr, "reactor smoke FAILED\n");
      return 1;
    }
    std::printf("reactor smoke OK\n");
    return 0;
  }

  bench::print_header(
      "PR9", "epoll reactor: 10k keep-alive connections on one node",
      "A fixed closed-loop request load measured against (a) a node capped "
      "at the old pool admission bound and (b) a reactor node already "
      "holding >= 10k established keep-alive connections, forked across "
      "client processes to stay inside the fd limit. Bounded p99 under (b) "
      "is the reactor claim: parked connections are not load.");

  // --- baseline: one-node closed loop with the phase breakdown ------------
  LoadResult baseline;
  obs::RegistrySnapshot baseline_snap;
  {
    runtime::MiniClusterOptions options;
    const fs::Docbase docs = fs::make_uniform(
        kDocCount, kDocBytes, 1, fs::Placement::kRoundRobin, nullptr, "/docs");
    runtime::MiniCluster cluster(1, docs, options);
    cluster.start();
    baseline = run_load(cluster.port(0), kLoadSessions, kLoadPerSession);
    baseline_snap = cluster.registry().snapshot();
    cluster.stop();
  }
  std::printf("baseline (1 node, %d keep-alive sessions): %.0f rps, "
              "p50 %.2f ms, p99 %.2f ms\n",
              kLoadSessions, baseline.rps, 1e3 * baseline.p50_s,
              1e3 * baseline.p99_s);

  // --- sweep point 1: the old pool admission bound ------------------------
  LoadResult pooled;
  std::uint64_t pooled_shed = 0;
  {
    runtime::MiniClusterOptions options;
    options.max_connections = 48;  // max_workers + max_pending, the PR3 cap
    const fs::Docbase docs = fs::make_uniform(
        kDocCount, kDocBytes, 1, fs::Placement::kRoundRobin, nullptr, "/docs");
    runtime::MiniCluster cluster(1, docs, options);
    cluster.start();
    pooled = run_load(cluster.port(0), kLoadSessions, kLoadPerSession);
    pooled_shed = cluster.node(0).shed_count();
    cluster.stop();
  }
  std::printf("pool-bounded (cap 48): %.0f rps, p50 %.2f ms, p99 %.2f ms, "
              "shed %llu\n",
              pooled.rps, 1e3 * pooled.p50_s, 1e3 * pooled.p99_s,
              static_cast<unsigned long long>(pooled_shed));

  // --- sweep point 2: the same load behind a 10k idle keep-alive herd -----
  const SweepResult sweep = run_idle_sweep(
      kIdleChildren, kIdleConnsPerChild, /*max_conns=*/12000, kLoadSessions,
      kLoadPerSession);
  if (!sweep.ok) return 1;
  const LoadResult& reactor = sweep.load;
  const std::uint64_t reactor_shed = sweep.shed;
  const std::uint32_t idle_established = sweep.established;
  const int idle_peak = sweep.active_seen;
  std::printf("reactor behind %u idle conns: %.0f rps, p50 %.2f ms, "
              "p99 %.2f ms, shed %llu\n",
              idle_established, reactor.rps, 1e3 * reactor.p50_s,
              1e3 * reactor.p99_s,
              static_cast<unsigned long long>(reactor_shed));
  const double p99_ratio =
      pooled.p99_s > 0.0 ? reactor.p99_s / pooled.p99_s : 0.0;
  std::printf("p99 ratio (reactor-10k / pool-bounded): %.2fx\n", p99_ratio);
  if (idle_established < kIdleTarget) {
    std::printf("WARNING: idle herd fell short of the %d target\n",
                kIdleTarget);
  }
  bench::print_note(
      "expected shape: both sweep points serve the identical closed loop at "
      "comparable rps, and the 10k idle keep-alive herd moves p99 by a "
      "small constant factor, not an order of magnitude — epoll readiness "
      "and the timer heap are O(active), not O(open).");

  // --- machine-readable trajectory point ----------------------------------
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("sweb-bench/1");
  w.key("bench").value("concurrency");
  w.key("pr").value(9);
  w.key("scenarios").begin_object();

  w.key("baseline").begin_object();
  w.key("config").begin_object();
  w.key("nodes").value(1);
  w.key("sessions").value(kLoadSessions);
  w.key("requests_per_session").value(kLoadPerSession);
  w.key("file_bytes").value(static_cast<std::int64_t>(kDocBytes));
  w.end_object();
  write_load(w, baseline);
  w.key("phases").begin_object();
  for (const obs::Phase phase : obs::all_phases()) {
    const char* name = obs::phase_name(phase);
    const auto it = baseline_snap.histograms.find(
        std::string("node.0.phase.") + name);
    const bool have = it != baseline_snap.histograms.end();
    const std::uint64_t count = have ? it->second.count : 0;
    w.key(name).begin_object();
    w.key("count").value(count);
    w.key("p50_s").value(
        count > 0 ? obs::histogram_quantile(it->second, 0.50) : 0.0);
    w.key("p95_s").value(
        count > 0 ? obs::histogram_quantile(it->second, 0.95) : 0.0);
    w.key("p99_s").value(
        count > 0 ? obs::histogram_quantile(it->second, 0.99) : 0.0);
    w.end_object();
  }
  w.end_object();  // phases
  w.end_object();  // baseline

  w.key("concurrency_sweep").begin_object();
  w.key("config").begin_object();
  w.key("nodes").value(1);
  w.key("sessions").value(kLoadSessions);
  w.key("requests_per_session").value(kLoadPerSession);
  w.key("file_bytes").value(static_cast<std::int64_t>(kDocBytes));
  w.key("idle_target").value(kIdleTarget);
  w.key("idle_children").value(kIdleChildren);
  w.end_object();
  w.key("pooled_baseline").begin_object();
  w.key("max_connections").value(48);
  w.key("idle_connections").value(0);
  w.key("shed_503").value(pooled_shed);
  write_load(w, pooled);
  w.end_object();
  w.key("reactor_10k").begin_object();
  w.key("max_connections").value(12000);
  w.key("idle_connections").value(static_cast<std::uint64_t>(idle_established));
  w.key("active_connections_seen").value(idle_peak);
  w.key("shed_503").value(reactor_shed);
  write_load(w, reactor);
  w.end_object();
  w.key("p99_ratio").value(p99_ratio);
  w.end_object();  // concurrency_sweep

  w.end_object();  // scenarios
  w.end_object();
  if (!bench::write_json_report("BENCH_PR9.json", w.str())) return 1;
  return 0;
}
