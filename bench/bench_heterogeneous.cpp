// §5 future work: "investigating its performance in a heterogeneous
// environment". The paper's premise — workstations "can be heterogeneous
// ... can be used for other computing needs" — is exactly where uniform
// round robin breaks: it loads a 20 MIPS relic like a 60 MIPS workstation.
//
// Cluster: 2 fast nodes, 2 slow nodes, 1 big-memory file server on a
// switched network; mixed static + CGI workload.
#include "bench_common.h"

namespace {

using namespace sweb;

cluster::ClusterConfig heterogeneous_cluster() {
  cluster::ClusterConfig cfg;
  cfg.name = "heterogeneous pool";
  cfg.network = cluster::NetworkKind::kPointToPoint;
  cfg.nfs_penalty = 0.2;
  cluster::NodeConfig fast;
  fast.cpu_ops_per_sec = 60e6;
  fast.ram_bytes = 64ull << 20;
  fast.disk_bytes_per_sec = 6e6;
  fast.nic_bytes_per_sec = 8e6;
  fast.external_bytes_per_sec = 10e6;
  fast.max_connections = 64;
  cluster::NodeConfig slow = fast;
  slow.cpu_ops_per_sec = 15e6;
  slow.ram_bytes = 16ull << 20;
  slow.disk_bytes_per_sec = 2e6;
  slow.max_connections = 24;
  cluster::NodeConfig file_server = fast;
  file_server.cpu_ops_per_sec = 25e6;
  file_server.ram_bytes = 128ull << 20;
  file_server.disk_bytes_per_sec = 10e6;
  cfg.nodes = {fast, fast, slow, slow, file_server};
  return cfg;
}

workload::ExperimentResult run_cell(const char* policy, double rps) {
  util::Rng rng(31);
  workload::ExperimentSpec spec;
  spec.cluster = heterogeneous_cluster();
  spec.docbase = fs::make_adl(96, spec.cluster.num_nodes(), rng);
  spec.clients = workload::ucsb_clients();
  spec.policy = policy;
  spec.mix.kind = workload::MixSpec::Kind::kZipf;
  spec.mix.zipf_exponent = 1.0;
  spec.burst.rps = rps;
  spec.burst.duration_s = 30.0;
  return workload::run_experiment(spec);
}

}  // namespace

int main() {
  using namespace sweb;
  bench::print_header(
      "Heterogeneous pool (§5 future work)",
      "2 fast + 2 slow workstations + 1 file server, ADL browse mix",
      "Zipf(1.0) over 96 digital-library scenes (metadata, thumbnails, "
      "browse images, 1.5 MB scenes, CGI queries), 30 s bursts. Per-node "
      "shares show who ends up doing the work.");

  for (double rps : {24.0, 48.0}) {
    std::printf("offered %.0f rps:\n", rps);
    metrics::Table table({"policy", "mean resp", "p95 resp", "drop",
                          "fast-node share", "slow-node share"});
    for (const char* policy :
         {"round-robin", "cpu-only", "file-locality", "sweb"}) {
      const auto r = run_cell(policy, rps);
      int fast = 0, slow = 0, total = 0;
      for (std::size_t n = 0; n < r.fulfillments_per_node.size(); ++n) {
        total += r.fulfillments_per_node[n];
        if (n < 2) fast += r.fulfillments_per_node[n];
        if (n == 2 || n == 3) slow += r.fulfillments_per_node[n];
      }
      const auto share = [&](int x) {
        return total > 0 ? metrics::fmt_pct(static_cast<double>(x) / total)
                         : std::string("-");
      };
      table.add_row({policy,
                     bench::seconds_cell(r.summary.mean_response) + " s",
                     bench::seconds_cell(r.summary.p95_response) + " s",
                     metrics::fmt_pct(r.summary.drop_rate()), share(fast),
                     share(slow)});
    }
    std::printf("%s\n", table.render().c_str());
  }
  bench::print_note(
      "expected shape: round robin serves ~2/5 of requests on the slow "
      "pair and its tail blows up first; the adaptive policies shift work "
      "toward the fast nodes and the file server as load grows.");
  return 0;
}
