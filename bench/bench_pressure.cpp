// PR10 — overload-control pressure sweep: driving the server past the knee.
//
// The paper's §3.3 analytic model predicts a hard max-rps knee per
// configuration. Every earlier bench stayed under it; this one crosses it
// on purpose with an *open-loop* generator (Poisson arrivals keep coming
// whether or not earlier requests finished — the load shape under which
// servers actually collapse) and measures what the overload controller
// buys:
//
//   pressure_sweep — offered rate swept across {0.4 .. 2.0} x knee against
//                    a live two-node MiniCluster, once with the controller
//                    enabled and once without. The claims under test:
//                    controlled goodput at 2x the knee holds near the knee
//                    value, and the *admitted* p99 stays bounded, while
//                    the uncontrolled run lets queue delay poison every
//                    admitted request.
//   flash_crowd    — base rate with a 3x spike one second long; the state
//                    machine must ride it up immediately, walk back down
//                    through the hysteresis bands, and end healthy.
//   retry_spread   — a herd shed at the same instant with the same
//                    Retry-After hint; the client's comeback jitter must
//                    spread the retry wave instead of marching it back in
//                    one synchronized bin.
//
// Workload: 48 documents, Zipf-skewed popularity (s = 0.9), mixed methods
// (85% GET / 10% HEAD / 5% CGI with a small CPU burn). Arrivals come in
// pipelined keep-alive batches: each Poisson tick opens one connection and
// writes a batch of requests in a single send. That asymmetry is the whole
// trick to over-offering from a co-located generator — the client pays
// ~1/batch of a syscall per request while the server pays full parse +
// serve + write per request, so offered load genuinely exceeds serviceable
// load even when generator and cluster share the machine. Goodput counts
// only 2xx/3xx answered within the SLA window — an answer that arrives
// after the client stopped caring is not good — and no request is ever
// retried: offered is offered.
//
// `--smoke` runs a seconds-scale single-node version as a CI gate
// (typically under ASan): past-the-knee load must produce sheds AND
// successful service, and the node must walk back to healthy afterwards.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "fs/docbase.h"
#include "http/parser.h"
#include "obs/json.h"
#include "obs/phase.h"
#include "obs/registry.h"
#include "runtime/chaos.h"
#include "runtime/client.h"
#include "runtime/mini_cluster.h"
#include "runtime/overload.h"
#include "runtime/socket.h"
#include "util/rng.h"

namespace {

using namespace std::chrono_literals;
namespace bench = sweb::bench;
namespace fs = sweb::fs;
namespace obs = sweb::obs;
namespace runtime = sweb::runtime;
namespace util = sweb::util;

constexpr int kNodes = 2;
constexpr int kDocCount = 48;
constexpr std::uint64_t kDocBytes = 8192;
constexpr double kZipfExponent = 0.9;
/// Dynamic-content share of the mix. Deliberately flash-crowd heavy: past
/// the knee the CGI slice alone wants more CPU than the machine has, so
/// overload is a property of the workload shape, not of generator muscle —
/// which is what lets a co-located generator drive a genuine collapse.
constexpr double kCgiFraction = 0.25;
constexpr double kHeadFraction = 0.10;
/// Batch dispatchers. Far more than the core count on purpose: a
/// dispatcher whose batch is stuck behind overloaded CGI sleeps in
/// read_some costing nothing, and the population has to be deep enough
/// that fresh arrivals keep coming while old ones are still waiting —
/// that is what makes the loop open. In-flight batches are bounded by the
/// server's connection cap; refused batches return in microseconds.
constexpr int kGenThreads = 192;
/// Requests pipelined per connection. Must stay under the server's
/// max_requests_per_connection (32) or the tail of every batch dies to the
/// per-connection request cap instead of to overload.
constexpr int kBatchSize = 24;
/// An admitted answer only counts as goodput if it lands within this
/// window; a response to a client that already gave up is wasted work.
constexpr double kSlaSeconds = 0.25;
/// How long the generator keeps listening for a batch's responses before
/// writing the remainder off as lost.
constexpr auto kClientPatience = std::chrono::milliseconds{1000};
constexpr auto kConnectTimeout = std::chrono::milliseconds{250};
constexpr double kPointSeconds = 3.0;
/// Unmeasured lead-in per sweep point: queues, connection pileup, and the
/// controller's trip all reach steady state before the measured window
/// opens, so a point reports sustained behavior at its offered rate rather
/// than the transient of getting there.
constexpr double kWarmupSeconds = 2.0;
constexpr double kSweepFactors[] = {0.4, 0.7, 0.9, 1.0, 1.2, 1.6, 2.0};

/// Overload knobs for the pressurized clusters: queue-delay bands at
/// 20/60 ms instead of the production 50/250 ms defaults (the bench's
/// requests are loopback-cheap, so useful queue delay is smaller), a 1 s
/// estimation horizon, and a short dwell so the bench's seconds-scale
/// phases can watch a full recovery walk.
runtime::OverloadParams control_params() {
  runtime::OverloadParams params;
  params.enabled = true;
  params.brownout_enter_s = 0.020;
  params.brownout_exit_s = 0.008;
  // The estimate blends reactor attention waits with CGI pool waits, and a
  // browned-out node still drains an already-accepted CGI backlog worth
  // hundreds of milliseconds — that is brownout working, not grounds to
  // escalate. Full shedding is reserved for queue delay so deep it rivals
  // the patience of the clients themselves.
  params.shed_enter_s = 0.600;
  params.shed_exit_s = 0.100;
  params.sample_horizon_s = 1.0;
  // Dwell pinned above warmup + measured window: once a point trips into
  // brownout it stays there for the whole measurement, so the point
  // reports one regime instead of averaging brownout with the toxic
  // re-admission bursts of an exit/re-enter cycle.
  params.min_dwell_s = 5.0;
  // The reactor itself is rarely the bottleneck here — the CGI pool is —
  // so connection pileup is the leading overload signal and the bench
  // trips it much earlier than the production default: steady state below
  // the knee holds only a couple dozen of the 160 slots, so half-full
  // already means requests are finishing far slower than they arrive.
  params.brownout_utilization = 0.35;
  return params;
}

runtime::MiniClusterOptions cluster_options(bool control_on) {
  runtime::MiniClusterOptions options;
  // Deep admission on purpose: the uncontrolled run must be *allowed* to
  // queue far past useful before its static cap sheds, so the sweep shows
  // what adaptive early shedding is for. Both runs get the same cap,
  // deliberately below the generator's thread count so pressure can
  // actually pool inside the node.
  options.max_connections = 160;
  if (control_on) options.overload = control_params();
  return options;
}

/// A fresh pressurized cluster: Zipf docbase + one CPU-burning CGI
/// endpoint. Caller starts it.
std::unique_ptr<runtime::MiniCluster> make_cluster(int nodes,
                                                   bool control_on) {
  const fs::Docbase docs = fs::make_uniform(
      kDocCount, kDocBytes, nodes, fs::Placement::kRoundRobin, nullptr,
      "/docs");
  auto cluster = std::make_unique<runtime::MiniCluster>(
      nodes, docs, cluster_options(control_on));
  cluster->docs_mutable().register_cgi(
      "/cgi/compute.cgi", /*owner=*/0,
      [](const sweb::http::Request&, std::string_view query) {
        // ~1 ms of real arithmetic. The CPU-bound class is what drives the
        // node past its knee: at 2x offered load the CGI slice alone wants
        // more CPU than the machine has, which is precisely the situation
        // brownout's shed-the-expensive-class policy exists for.
        volatile double acc = 1.0;
        for (int i = 1; i < 400000; ++i) acc = acc + 1.0 / i;
        return sweb::http::make_ok(
            "computed " + std::to_string(acc) + " for " + std::string(query),
            "text/plain");
      });
  return cluster;
}

struct OpenLoopResult {
  double elapsed_s = 0.0;
  std::uint64_t arrivals = 0;  // requests actually issued
  std::uint64_t ok = 0;        // 2xx/3xx answered within the SLA window
  std::uint64_t late = 0;      // answered, but past the SLA window
  std::uint64_t shed = 0;      // 503 answers
  std::uint64_t failed = 0;    // connect/timeout/transport casualties
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  [[nodiscard]] double offered_rps() const {
    return elapsed_s > 0.0 ? static_cast<double>(arrivals) / elapsed_s : 0.0;
  }
  [[nodiscard]] double goodput_rps() const {
    return elapsed_s > 0.0 ? static_cast<double>(ok) / elapsed_s : 0.0;
  }
};

/// One batch's tallies, merged into the shared counters by the caller.
struct BatchTally {
  std::uint64_t ok = 0;
  std::uint64_t late = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
};

/// Dispatches one pipelined batch: connect, write every request in one
/// send, then read and classify responses until they are all in, the
/// connection dies, or patience runs out. `is_head[i]` frames response i.
BatchTally run_batch(std::uint16_t port, const std::string& wire,
                     const std::vector<bool>& is_head,
                     obs::Histogram& latency_hist, std::mutex& hist_mutex) {
  BatchTally tally;
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t total = is_head.size();
  auto stream = runtime::TcpStream::connect(
      runtime::SocketAddress::loopback(port), kConnectTimeout);
  if (!stream || !stream->write_all(wire, kClientPatience)) {
    tally.failed = total;
    return tally;
  }
  sweb::http::ResponseParser parser;
  parser.expect_head_response(is_head[0]);
  std::string pending;
  std::size_t done = 0;
  const auto deadline = t0 + kClientPatience;
  while (done < total) {
    if (pending.empty()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      auto r = stream->read_some(
          64 * 1024, std::chrono::duration_cast<std::chrono::milliseconds>(
                         deadline - now));
      if (!r.ok || r.eof || r.data.empty()) break;
      pending = std::move(r.data);
    }
    std::size_t consumed = 0;
    const auto state = parser.feed(pending, consumed);
    pending.erase(0, consumed);
    if (state == sweb::http::ParseResult::kError) break;
    if (state != sweb::http::ParseResult::kComplete) continue;
    const int status = sweb::http::code(parser.message().status);
    const double latency_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (status == 503) {
      ++tally.shed;
    } else if (status < 400) {
      {
        const std::lock_guard<std::mutex> lock(hist_mutex);
        latency_hist.observe(latency_s);
      }
      if (latency_s <= kSlaSeconds) {
        ++tally.ok;
      } else {
        ++tally.late;
      }
    } else {
      ++tally.failed;
    }
    ++done;
    if (done < total) {
      parser.reset();
      parser.expect_head_response(is_head[done]);
    }
  }
  tally.failed += total - done;
  return tally;
}

/// Open-loop generator: kGenThreads independent Poisson streams of
/// *batches* whose request rates sum to `rate_rps` (rate <= 0: flat out,
/// the saturation probe), mixed GET/HEAD/CGI over Zipf-popular documents,
/// batches round-robin across nodes. Requests carry the at-most-once hop
/// marker so every node serves what it is asked for — the sweep measures
/// service under pressure, not redirect ping-pong. Runs for `seconds`.
OpenLoopResult run_open_loop(const std::vector<std::uint16_t>& ports,
                             double rate_rps, double seconds,
                             std::uint64_t seed) {
  obs::Histogram latency_hist(obs::log_latency_bounds());
  std::mutex hist_mutex;
  std::atomic<std::uint64_t> arrivals{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> late{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> failed{0};
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::duration_cast<
                                    std::chrono::steady_clock::duration>(
                                    std::chrono::duration<double>(seconds));
  std::vector<std::thread> threads;
  threads.reserve(kGenThreads);
  for (int t = 0; t < kGenThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Rng rng(seed * 1315423911ULL + static_cast<std::uint64_t>(t));
      // Poisson over batch arrivals: each tick carries kBatchSize requests.
      const double mean_gap_s =
          rate_rps > 0.0
              ? static_cast<double>(kGenThreads) * kBatchSize / rate_rps
              : 0.0;
      // Stagger the first tick exponentially too, or every thread fires at
      // t=0 and each point opens with a synchronized 192-batch megaflash.
      auto next = std::chrono::steady_clock::now();
      if (mean_gap_s > 0.0) {
        next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(rng.exponential(mean_gap_s)));
      }
      std::uint64_t n = 0;
      for (;;) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) break;
        if (mean_gap_s > 0.0 && next > now) {
          std::this_thread::sleep_until(std::min(next, deadline));
          if (std::chrono::steady_clock::now() >= deadline) break;
        }
        if (mean_gap_s > 0.0) {
          next += std::chrono::duration_cast<
              std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(rng.exponential(mean_gap_s)));
        }
        const std::uint16_t port =
            ports[(static_cast<std::size_t>(t) + n) % ports.size()];
        ++n;
        std::string wire;
        std::vector<bool> is_head;
        is_head.reserve(kBatchSize);
        for (int j = 0; j < kBatchSize; ++j) {
          const double roll = rng.uniform(0.0, 1.0);
          std::string target;
          bool head = false;
          if (roll < kCgiFraction) {
            target = "/cgi/compute.cgi?n=" + std::to_string(n) +
                     "&sweb-hop=1";
          } else {
            target = "/docs/file" +
                     std::to_string(rng.zipf(kDocCount, kZipfExponent)) +
                     ".html?sweb-hop=1";
            head = roll < kCgiFraction + kHeadFraction;
          }
          wire += head ? "HEAD " : "GET ";
          wire += target;
          wire += " HTTP/1.0\r\nHost: bench\r\n";
          // The last request closes so the server tears the connection
          // down the moment the batch is answered.
          if (j + 1 < kBatchSize) wire += "Connection: keep-alive\r\n";
          wire += "\r\n";
          is_head.push_back(head);
        }
        arrivals.fetch_add(static_cast<std::uint64_t>(kBatchSize),
                           std::memory_order_relaxed);
        const BatchTally tally =
            run_batch(port, wire, is_head, latency_hist, hist_mutex);
        ok.fetch_add(tally.ok, std::memory_order_relaxed);
        late.fetch_add(tally.late, std::memory_order_relaxed);
        shed.fetch_add(tally.shed, std::memory_order_relaxed);
        failed.fetch_add(tally.failed, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  OpenLoopResult out;
  out.elapsed_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
  out.arrivals = arrivals.load();
  out.ok = ok.load();
  out.late = late.load();
  out.shed = shed.load();
  out.failed = failed.load();
  const auto value = obs::histogram_value(latency_hist);
  out.p50_s = obs::histogram_quantile(value, 0.50);
  out.p95_s = obs::histogram_quantile(value, 0.95);
  out.p99_s = obs::histogram_quantile(value, 0.99);
  return out;
}

struct PointStats {
  OpenLoopResult load;
  std::uint64_t shed_cgi = 0;
  std::uint64_t shed_uncached = 0;
  std::uint64_t shed_accept = 0;
  std::uint64_t transitions = 0;
  std::string worst_state = "healthy";
};

/// One sweep point: fresh cluster (clean controller + counters), paced
/// open-loop burst, cluster-side shed/transition accounting.
PointStats run_point(int nodes, bool control_on, double rate_rps,
                     double seconds, std::uint64_t seed) {
  auto cluster = make_cluster(nodes, control_on);
  cluster->start();
  std::vector<std::uint16_t> ports;
  for (int n = 0; n < nodes; ++n) ports.push_back(cluster->port(n));
  PointStats out;
  // Warm up unmeasured, then measure the steady state. The cluster-side
  // shed/transition tallies below span both windows.
  (void)run_open_loop(ports, rate_rps, kWarmupSeconds, seed ^ 0xabcdULL);
  out.load = run_open_loop(ports, rate_rps, seconds, seed);
  for (int n = 0; n < nodes; ++n) {
    const runtime::NodeServer& node = cluster->node(n);
    out.shed_cgi += node.overload_shed_cgi();
    out.shed_uncached += node.overload_shed_uncached();
    out.shed_accept += node.overload_shed_accept();
    out.transitions += node.overload().transitions();
    const runtime::OverloadState state = node.overload_state();
    if (static_cast<int>(state) >
        (out.worst_state == "healthy"
             ? 0
             : (out.worst_state == "brownout" ? 1 : 2))) {
      out.worst_state = runtime::overload_state_name(state);
    }
  }
  cluster->stop();
  return out;
}

/// The knee, by its textbook definition: the peak of the goodput-vs-
/// offered curve, measured with the *same* open-loop generator the sweep
/// uses (a closed-loop probe overestimates it — pipelined batches pay
/// head-of-line blocking a ping-pong session never sees). Climbs a
/// geometric rate ladder against fresh uncontrolled clusters and stops
/// once goodput falls well off the best seen: past the knee, more offered
/// load only buys collapse.
double calibrate_knee(int nodes, double seconds_per_probe) {
  double best = 0.0;
  std::uint64_t seed = 17;
  for (double rate = 600.0; rate <= 24000.0; rate *= 1.5) {
    const PointStats probe =
        run_point(nodes, /*control_on=*/false, rate, seconds_per_probe,
                  seed++);
    const double goodput = probe.load.goodput_rps();
    best = std::max(best, goodput);
    if (goodput < 0.8 * best) break;
  }
  return best;
}

void write_point(obs::JsonWriter& w, const PointStats& p) {
  w.key("offered_rps").value(p.load.offered_rps());
  w.key("goodput_rps").value(p.load.goodput_rps());
  w.key("requests_ok").value(p.load.ok);
  w.key("requests_late").value(p.load.late);
  w.key("shed_503").value(p.load.shed);
  w.key("requests_failed").value(p.load.failed);
  w.key("latency").begin_object();
  w.key("p50_s").value(p.load.p50_s);
  w.key("p95_s").value(p.load.p95_s);
  w.key("p99_s").value(p.load.p99_s);
  w.end_object();
  w.key("shed_cgi").value(p.shed_cgi);
  w.key("shed_uncached").value(p.shed_uncached);
  w.key("shed_accept").value(p.shed_accept);
  w.key("state_transitions").value(p.transitions);
  w.key("final_state").value(p.worst_state);
}

/// Spins until `predicate` holds or `timeout_s` passes; true on success.
template <typename Predicate>
bool eventually(Predicate predicate, double timeout_s) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_s));
  while (!predicate()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(5ms);
  }
  return true;
}

// --- Flash crowd ------------------------------------------------------------

struct FlashCrowd {
  OpenLoopResult before, spike, after;
  std::uint64_t transitions = 0;
  bool recovered_healthy = false;
};

FlashCrowd run_flash_crowd(double knee_rps) {
  auto cluster = make_cluster(kNodes, /*control_on=*/true);
  cluster->start();
  std::vector<std::uint16_t> ports;
  for (int n = 0; n < kNodes; ++n) ports.push_back(cluster->port(n));
  FlashCrowd out;
  out.before = run_open_loop(ports, 0.5 * knee_rps, 1.0, 31);
  out.spike = run_open_loop(ports, 3.0 * knee_rps, 1.0, 32);
  out.after = run_open_loop(ports, 0.5 * knee_rps, 1.5, 33);
  // The walk back down: dwell-gated one-step downgrades as samples age
  // out. Both nodes must reach healthy without anyone forcing them.
  out.recovered_healthy = eventually(
      [&] {
        for (int n = 0; n < kNodes; ++n) {
          if (cluster->node(n).overload_state() !=
              runtime::OverloadState::kHealthy) {
            return false;
          }
        }
        return true;
      },
      6.0);
  for (int n = 0; n < kNodes; ++n) {
    out.transitions += cluster->node(n).overload().transitions();
  }
  cluster->stop();
  return out;
}

// --- Retry comeback spread ---------------------------------------------------

struct RetrySpread {
  std::vector<int> bins;  // 100 ms bins of fetch-return times
  double max_bin_fraction = 0.0;
  int sessions = 0;
};

/// `sessions` clients shed at the same instant by a pinned-shedding node,
/// every one holding the identical Retry-After hint. Their retry (attempt
/// 2) lands at hint + comeback jitter; the fetch returns right after, so
/// return-time bins expose the comeback wave's shape.
RetrySpread run_retry_spread(double spread, int sessions) {
  runtime::MiniClusterOptions options;
  options.retry_after_hint = 1000ms;  // everyone hears exactly "1"
  const fs::Docbase docs = fs::make_uniform(
      4, 2048, 1, fs::Placement::kRoundRobin, nullptr, "/docs");
  runtime::MiniCluster cluster(1, docs, options);
  cluster.start();
  cluster.node(0).force_overload(runtime::OverloadState::kShedding);
  const std::string url = "http://127.0.0.1:" +
                          std::to_string(cluster.port(0)) +
                          "/docs/file0.html";
  RetrySpread out;
  out.sessions = sessions;
  out.bins.assign(25, 0);  // 100 ms bins covering 2.5 s
  std::vector<double> returns(static_cast<std::size_t>(sessions), 0.0);
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      runtime::FetchOptions fo;
      fo.retry.max_attempts = 2;
      fo.retry.retry_after_spread = spread;
      fo.retry.seed = 0x9e3779b9ULL + static_cast<std::uint64_t>(s);
      const auto result = runtime::fetch(url, fo);
      (void)result;  // both attempts are shed; the timing is the data
      returns[static_cast<std::size_t>(s)] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
    });
  }
  for (auto& thread : threads) thread.join();
  for (const double r : returns) {
    const auto bin = static_cast<std::size_t>(r / 0.1);
    if (bin < out.bins.size()) ++out.bins[bin];
  }
  int max_bin = 0;
  for (const int b : out.bins) max_bin = std::max(max_bin, b);
  out.max_bin_fraction =
      sessions > 0 ? static_cast<double>(max_bin) / sessions : 0.0;
  cluster.stop();
  return out;
}

// --- Closed-loop baseline (the cross-PR trajectory point) -------------------

struct Baseline {
  double rps = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t failed = 0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double p99_s = 0.0;
  obs::RegistrySnapshot snap;
};

Baseline run_baseline(int sessions, int per_session) {
  Baseline out;
  const fs::Docbase docs = fs::make_uniform(
      16, kDocBytes, 1, fs::Placement::kRoundRobin, nullptr, "/docs");
  runtime::MiniCluster cluster(1, docs);
  cluster.start();
  const std::uint16_t port = cluster.port(0);
  obs::Histogram latency_hist(obs::log_latency_bounds());
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> failed{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int s = 0; s < sessions; ++s) {
    threads.emplace_back([&, s] {
      runtime::FetchOptions fo;
      fo.keep_alive = true;
      runtime::FetchSession session(fo);
      for (int i = 0; i < per_session; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto result = session.fetch(
            "http://127.0.0.1:" + std::to_string(port) + "/docs/file" +
            std::to_string((s * 7 + i) % 16) + ".html");
        const double latency_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        if (result && sweb::http::code(result->response.status) == 200) {
          ++ok;
          latency_hist.observe(latency_s);
        } else {
          ++failed;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double elapsed_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
  out.ok = ok.load();
  out.failed = failed.load();
  out.rps = elapsed_s > 0.0 ? static_cast<double>(out.ok) / elapsed_s : 0.0;
  const auto value = obs::histogram_value(latency_hist);
  out.p50_s = obs::histogram_quantile(value, 0.50);
  out.p95_s = obs::histogram_quantile(value, 0.95);
  out.p99_s = obs::histogram_quantile(value, 0.99);
  out.snap = cluster.registry().snapshot();
  cluster.stop();
  return out;
}

// --- Smoke mode --------------------------------------------------------------

int run_smoke() {
  std::printf("pressure smoke: one node, past-the-knee burst, recovery\n");
  const double knee = calibrate_knee(/*nodes=*/1, /*seconds=*/0.5);
  if (knee <= 0.0) {
    std::fprintf(stderr, "smoke FAILED: saturation probe produced nothing\n");
    return 1;
  }
  std::printf("smoke knee ~ %.0f rps\n", knee);
  auto cluster = make_cluster(/*nodes=*/1, /*control_on=*/true);
  cluster->start();
  const std::vector<std::uint16_t> ports{cluster->port(0)};
  const OpenLoopResult burst =
      run_open_loop(ports, 2.0 * knee, 2.0, /*seed=*/5);
  const std::uint64_t sheds = cluster->node(0).overload_shed_cgi() +
                              cluster->node(0).overload_shed_uncached() +
                              cluster->node(0).overload_shed_accept() +
                              cluster->node(0).shed_count();
  const std::uint64_t transitions = cluster->node(0).overload().transitions();
  const bool recovered = eventually(
      [&] {
        return cluster->node(0).overload_state() ==
               runtime::OverloadState::kHealthy;
      },
      6.0);
  std::printf("smoke burst: offered %.0f rps, goodput %.0f rps, ok %llu, "
              "late %llu, shed %llu (cluster %llu), failed %llu, "
              "transitions %llu, recovered %s\n",
              burst.offered_rps(), burst.goodput_rps(),
              static_cast<unsigned long long>(burst.ok),
              static_cast<unsigned long long>(burst.late),
              static_cast<unsigned long long>(burst.shed),
              static_cast<unsigned long long>(sheds),
              static_cast<unsigned long long>(burst.failed),
              static_cast<unsigned long long>(transitions),
              recovered ? "yes" : "NO");
  // Serve-after-storm: the node must answer normally once drained.
  const auto after = runtime::fetch("http://127.0.0.1:" +
                                    std::to_string(cluster->port(0)) +
                                    "/docs/file0.html");
  cluster->stop();
  if (burst.ok == 0) {
    std::fprintf(stderr, "smoke FAILED: no goodput under pressure\n");
    return 1;
  }
  if (sheds == 0 && transitions == 0) {
    std::fprintf(stderr, "smoke FAILED: 2x the knee never engaged the "
                         "controller (no sheds, no transitions)\n");
    return 1;
  }
  if (!recovered) {
    std::fprintf(stderr, "smoke FAILED: controller never walked back to "
                         "healthy\n");
    return 1;
  }
  if (!after || sweb::http::code(after->response.status) != 200) {
    std::fprintf(stderr, "smoke FAILED: node unresponsive after the storm\n");
    return 1;
  }
  std::printf("pressure smoke OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--smoke") == 0) {
    return run_smoke();
  }

  bench::print_header(
      "PR10", "overload control: goodput and tail latency past the knee",
      "An open-loop Poisson generator (Zipf documents, mixed GET/HEAD/CGI, "
      "pipelined batches of 24 per connection) sweeps offered load across "
      "the knee "
      "against a two-node cluster, with and without the overload "
      "controller. Control should hold goodput near the knee and keep the "
      "admitted tail bounded at 2x overload; no control should let queue "
      "delay poison every admitted request.");

  // --- baseline: one-node closed loop with the phase breakdown ------------
  const Baseline baseline = run_baseline(/*sessions=*/16, /*per_session=*/250);
  std::printf("baseline (1 node, 16 keep-alive sessions): %.0f rps, "
              "p50 %.2f ms, p99 %.2f ms\n",
              baseline.rps, 1e3 * baseline.p50_s, 1e3 * baseline.p99_s);

  // --- knee calibration ----------------------------------------------------
  const double knee = calibrate_knee(kNodes, /*seconds=*/1.5);
  std::printf("calibrated knee (saturation goodput, %d nodes): %.0f rps\n",
              kNodes, knee);
  if (knee <= 0.0) {
    std::fprintf(stderr, "knee calibration produced nothing; aborting\n");
    return 1;
  }

  // --- the sweep ------------------------------------------------------------
  constexpr std::size_t kNumFactors =
      sizeof(kSweepFactors) / sizeof(kSweepFactors[0]);
  std::vector<PointStats> on_points(kNumFactors), off_points(kNumFactors);
  std::printf("\n%7s | %28s | %28s\n", "", "control ON", "control OFF");
  std::printf("%7s | %9s %8s %9s | %9s %8s %9s\n", "factor", "goodput",
              "p99 ms", "shed", "goodput", "p99 ms", "shed");
  for (std::size_t i = 0; i < kNumFactors; ++i) {
    const double rate = kSweepFactors[i] * knee;
    on_points[i] = run_point(kNodes, true, rate, kPointSeconds, 100 + i);
    off_points[i] = run_point(kNodes, false, rate, kPointSeconds, 200 + i);
    std::printf("%6.1fx | %9.0f %8.2f %9llu | %9.0f %8.2f %9llu\n",
                kSweepFactors[i], on_points[i].load.goodput_rps(),
                1e3 * on_points[i].load.p99_s,
                static_cast<unsigned long long>(on_points[i].load.shed),
                off_points[i].load.goodput_rps(),
                1e3 * off_points[i].load.p99_s,
                static_cast<unsigned long long>(off_points[i].load.shed));
  }

  // Headline claims, measured where the sweep is most hostile (2.0x)
  // against where it is healthy (0.4x) and at the knee (1.0x).
  const PointStats& healthy_on = on_points[0];
  const PointStats& knee_on = on_points[3];
  const PointStats& hot_on = on_points[kNumFactors - 1];
  const PointStats& hot_off = off_points[kNumFactors - 1];
  const double goodput_hold =
      knee_on.load.goodput_rps() > 0.0
          ? hot_on.load.goodput_rps() / knee_on.load.goodput_rps()
          : 0.0;
  const double p99_vs_healthy =
      healthy_on.load.p99_s > 0.0 ? hot_on.load.p99_s / healthy_on.load.p99_s
                                  : 0.0;
  const double off_p99_vs_healthy =
      healthy_on.load.p99_s > 0.0
          ? hot_off.load.p99_s / healthy_on.load.p99_s
          : 0.0;
  std::printf("\ncontrol-on goodput at 2.0x = %.0f%% of knee goodput "
              "(claim: >= 90%%)\n",
              100.0 * goodput_hold);
  std::printf("control-on admitted p99 at 2.0x = %.1fx healthy "
              "(claim: <= 5x); control-off = %.1fx\n",
              p99_vs_healthy, off_p99_vs_healthy);
  if (goodput_hold < 0.90) {
    std::printf("WARN: goodput under 2x overload fell below 90%% of the "
                "knee\n");
  }
  if (p99_vs_healthy > 5.0) {
    std::printf("WARN: admitted p99 under control exceeded 5x healthy\n");
  }

  // --- flash crowd ----------------------------------------------------------
  const FlashCrowd flash = run_flash_crowd(knee);
  std::printf("\nflash crowd (0.5x -> 3.0x -> 0.5x knee): goodput %.0f -> "
              "%.0f -> %.0f rps, %llu transitions, recovered healthy: %s\n",
              flash.before.goodput_rps(), flash.spike.goodput_rps(),
              flash.after.goodput_rps(),
              static_cast<unsigned long long>(flash.transitions),
              flash.recovered_healthy ? "yes" : "NO");

  // --- retry comeback spread ------------------------------------------------
  const RetrySpread spread_on = run_retry_spread(/*spread=*/0.5, 48);
  const RetrySpread spread_off = run_retry_spread(/*spread=*/0.0, 48);
  std::printf("retry comeback, identical 1 s Retry-After to 48 clients: "
              "max 100 ms bin holds %.0f%% of the herd with jitter, "
              "%.0f%% without (claim: jittered max bin <= 2x the fair "
              "share of its window)\n",
              100.0 * spread_on.max_bin_fraction,
              100.0 * spread_off.max_bin_fraction);

  bench::print_note(
      "expected shape: both curves match below the knee; past it the "
      "controlled run holds goodput near the knee with a bounded admitted "
      "p99 (brownout keeps cache-resident documents flowing, shedding "
      "refuses at accept with a drain-priced Retry-After), while the "
      "uncontrolled run's deep admission queue poisons its tail. The "
      "flash-crowd walkback and the de-synchronized retry wave are the "
      "hysteresis and comeback-jitter mechanisms, observed end to end.");

  // --- machine-readable trajectory point ----------------------------------
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("sweb-bench/1");
  w.key("bench").value("pressure");
  w.key("pr").value(10);
  w.key("scenarios").begin_object();

  w.key("baseline").begin_object();
  w.key("config").begin_object();
  w.key("nodes").value(1);
  w.key("sessions").value(16);
  w.key("requests_per_session").value(250);
  w.key("file_bytes").value(static_cast<std::int64_t>(kDocBytes));
  w.end_object();
  w.key("rps").value(baseline.rps);
  w.key("requests_ok").value(baseline.ok);
  w.key("requests_failed").value(baseline.failed);
  w.key("latency").begin_object();
  w.key("p50_s").value(baseline.p50_s);
  w.key("p95_s").value(baseline.p95_s);
  w.key("p99_s").value(baseline.p99_s);
  w.end_object();
  w.key("phases").begin_object();
  for (const obs::Phase phase : obs::all_phases()) {
    const char* name = obs::phase_name(phase);
    const auto it =
        baseline.snap.histograms.find(std::string("node.0.phase.") + name);
    const bool have = it != baseline.snap.histograms.end();
    const std::uint64_t count = have ? it->second.count : 0;
    w.key(name).begin_object();
    w.key("count").value(count);
    w.key("p50_s").value(
        count > 0 ? obs::histogram_quantile(it->second, 0.50) : 0.0);
    w.key("p95_s").value(
        count > 0 ? obs::histogram_quantile(it->second, 0.95) : 0.0);
    w.key("p99_s").value(
        count > 0 ? obs::histogram_quantile(it->second, 0.99) : 0.0);
    w.end_object();
  }
  w.end_object();  // phases
  w.end_object();  // baseline

  w.key("pressure_sweep").begin_object();
  w.key("config").begin_object();
  w.key("nodes").value(kNodes);
  w.key("gen_threads").value(kGenThreads);
  w.key("batch_size").value(kBatchSize);
  w.key("sla_s").value(kSlaSeconds);
  w.key("point_seconds").value(kPointSeconds);
  w.key("docs").value(kDocCount);
  w.key("file_bytes").value(static_cast<std::int64_t>(kDocBytes));
  w.key("zipf_exponent").value(kZipfExponent);
  w.key("cgi_fraction").value(kCgiFraction);
  w.key("head_fraction").value(kHeadFraction);
  w.key("max_connections").value(160);
  w.end_object();
  w.key("knee_rps").value(knee);
  w.key("points").begin_array();
  for (std::size_t i = 0; i < kNumFactors; ++i) {
    w.begin_object();
    w.key("factor").value(kSweepFactors[i]);
    w.key("nominal_rps").value(kSweepFactors[i] * knee);
    w.key("control_on").begin_object();
    write_point(w, on_points[i]);
    w.end_object();
    w.key("control_off").begin_object();
    write_point(w, off_points[i]);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("goodput_hold_2x").value(goodput_hold);
  w.key("p99_vs_healthy_2x").value(p99_vs_healthy);
  w.key("uncontrolled_p99_vs_healthy_2x").value(off_p99_vs_healthy);
  w.end_object();  // pressure_sweep

  w.key("flash_crowd").begin_object();
  w.key("knee_rps").value(knee);
  const auto write_interval = [&w](const char* name,
                                   const OpenLoopResult& r) {
    w.key(name).begin_object();
    w.key("offered_rps").value(r.offered_rps());
    w.key("goodput_rps").value(r.goodput_rps());
    w.key("shed_503").value(r.shed);
    w.key("requests_failed").value(r.failed);
    w.key("p99_s").value(r.p99_s);
    w.end_object();
  };
  write_interval("base_before", flash.before);
  write_interval("spike_3x", flash.spike);
  write_interval("base_after", flash.after);
  w.key("state_transitions").value(flash.transitions);
  w.key("recovered_healthy").value(flash.recovered_healthy);
  w.end_object();  // flash_crowd

  w.key("retry_spread").begin_object();
  w.key("retry_after_s").value(1.0);
  w.key("sessions").value(spread_on.sessions);
  const auto write_spread = [&w](const char* name, const RetrySpread& r) {
    w.key(name).begin_object();
    w.key("max_bin_fraction").value(r.max_bin_fraction);
    w.key("bins_100ms").begin_array();
    for (const int b : r.bins) w.value(b);
    w.end_array();
    w.end_object();
  };
  write_spread("with_jitter", spread_on);
  write_spread("without_jitter", spread_off);
  w.end_object();  // retry_spread

  w.end_object();  // scenarios
  w.end_object();
  if (!bench::write_json_report("BENCH_PR10.json", w.str())) return 1;
  return 0;
}
