// Hierarchical vs flat load dissemination (the follow-up-work extension).
//
// The paper's loadd broadcasts all-to-all: p*(p-1) messages per period.
// Fine at p = 6; at NOW scale it is the scalability wall the same group's
// follow-up ("Towards a Hierarchical Scheduling System for Distributed WWW
// Server Clusters") attacks with group leaders and aggregates. This bench
// measures both sides of the trade: monitoring traffic vs scheduling
// quality.
#include "bench_common.h"

namespace {

using namespace sweb;

workload::ExperimentResult run_cell(int nodes, bool hierarchical,
                                    int group_size, double rps) {
  workload::ExperimentSpec spec = bench::meiko_spec(
      nodes, 256 * 1024, static_cast<std::size_t>(nodes) * 30);
  spec.policy = "sweb";
  spec.burst.rps = rps;
  spec.burst.duration_s = 30.0;
  spec.server.loadd.hierarchical = hierarchical;
  spec.server.loadd.group_size = group_size;
  return workload::run_experiment(spec);
}

}  // namespace

int main() {
  using namespace sweb;
  bench::print_header(
      "Hierarchical loadd (extension)",
      "Flat all-to-all broadcasts vs group leaders + aggregates",
      "256 KB files, offered load scaled with the cluster (4 rps per "
      "node), 30 s bursts, SWEB scheduling, groups of 4.");

  metrics::Table table({"p", "flat msgs", "hier msgs", "traffic ratio",
                        "flat mean resp", "hier mean resp"});
  for (int p : {4, 8, 16, 32}) {
    const double rps = 4.0 * p;
    const auto flat = run_cell(p, false, 4, rps);
    const auto hier = run_cell(p, true, 4, rps);
    table.add_row(
        {std::to_string(p), std::to_string(flat.loadd_broadcasts),
         std::to_string(hier.loadd_broadcasts),
         metrics::fmt(static_cast<double>(flat.loadd_broadcasts) /
                          std::max<std::uint64_t>(1, hier.loadd_broadcasts),
                      1) + "x",
         bench::seconds_cell(flat.summary.mean_response) + " s",
         bench::seconds_cell(hier.summary.mean_response) + " s"});
  }
  std::printf("%s", table.render().c_str());
  bench::print_note(
      "expected shape: monitoring traffic grows ~quadratically flat vs "
      "~linearly hierarchical (the ratio widens with p) while the mean "
      "response stays comparable — remote groups seen as means is almost "
      "as good as full detail for the broker's decisions.");
  return 0;
}
