// The DNS-caching skew study (§1 and §3.1 prose).
//
// "DNS caching enables a local DNS system to cache the name-to-IP address
// mapping ... The downside is that all requests for a period of time from
// a DNS server's domain will go to a particular IP address." This bench
// quantifies that: arrival imbalance and response time vs the number of
// client domains and the record TTL, with and without SWEB's re-scheduling
// to clean up after the skew.
#include <algorithm>

#include "bench_common.h"

namespace {

using namespace sweb;

struct Cell {
  double imbalance = 0.0;  // max/mean of per-node arrivals
  double mean_response = 0.0;
};

Cell run_cell(int domains, double ttl_s, const char* policy) {
  workload::ExperimentSpec spec = bench::meiko_spec(6, 256 * 1024, 240);
  spec.policy = policy;
  spec.burst.rps = 24.0;
  spec.burst.duration_s = 30.0;
  spec.clients.domains = domains;
  // Hold the aggregate client-side capacity constant (48 MB/s) across
  // domain counts, so the last mile never masks the server-side skew.
  spec.clients.bandwidth_bytes_per_sec = 48e6 / domains;
  spec.server.dns_ttl_s = ttl_s;
  spec.keep_records = true;
  const auto r = workload::run_experiment(spec);

  std::vector<int> arrivals(6, 0);
  for (const metrics::RequestRecord& rec : r.records) {
    if (rec.first_node >= 0 && rec.first_node < 6) {
      ++arrivals[static_cast<std::size_t>(rec.first_node)];
    }
  }
  const int total = static_cast<int>(r.records.size());
  Cell cell;
  cell.imbalance = total > 0
                       ? *std::max_element(arrivals.begin(), arrivals.end()) /
                             (static_cast<double>(total) / 6.0)
                       : 0.0;
  cell.mean_response = r.summary.mean_response;
  return cell;
}

}  // namespace

int main() {
  using namespace sweb;
  bench::print_header(
      "DNS caching skew (§1/§3.1 prose)",
      "Client-side DNS caching defeats the round-robin spread",
      "6-node Meiko, 256 KB files at 24 rps for 30 s. Imbalance = hottest "
      "node's arrival share relative to a perfect 1/6 split (1.0 = even; "
      "6.0 = everything on one node).");

  metrics::Table table({"domains", "TTL", "arrival imbalance",
                        "RR mean resp", "SWEB mean resp"});
  for (const int domains : {1, 3, 12, 48}) {
    for (const double ttl : {0.0, 1800.0}) {
      const Cell rr = run_cell(domains, ttl, "round-robin");
      const Cell sweb = run_cell(domains, ttl, "sweb");
      table.add_row({std::to_string(domains),
                     ttl == 0.0 ? "none" : "30 min",
                     metrics::fmt(rr.imbalance, 2) + "x",
                     bench::seconds_cell(rr.mean_response) + " s",
                     bench::seconds_cell(sweb.mean_response) + " s"});
    }
  }
  std::printf("%s", table.render().c_str());
  bench::print_note(
      "expected shape: with caching (30 min TTL) and few domains, arrivals "
      "pile onto one or two nodes (imbalance -> 6x at 1 domain) and round "
      "robin's response time suffers; TTL 0 restores the even rotation; "
      "SWEB's second-level re-scheduling largely repairs the skew either "
      "way — the paper's answer to the DNS-caching weakness.");
  return 0;
}
