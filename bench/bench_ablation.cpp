// Ablations over SWEB's design choices (DESIGN.md §5): what each mechanism
// buys. Not a paper table — the paper motivates each choice in prose; this
// bench quantifies them on the Table 3 workload (non-uniform, 6-node
// Meiko, heavy load).
//
//  1. Δ-inflation (30%) on redirects vs. off — the "unsynchronized
//     overloading" herd effect (§3.2, citing [SHK95]).
//  2. loadd period 0.5 / 2 / 10 s — staleness vs. monitoring overhead.
//  3. at-most-once redirection vs. unlimited — the ping-pong effect.
//  4. multi-faceted cost vs. single-faceted (CPU-only) scheduling — the
//     paper's core argument against classic load balancing.
//  5. oracle misestimation — CPU demand over/underestimated 4x.
#include "bench_common.h"

namespace {

using namespace sweb;

workload::ExperimentSpec base_spec() {
  util::Rng doc_rng(17);
  workload::ExperimentSpec spec;
  spec.cluster = cluster::meiko_config(6);
  spec.docbase = fs::make_nonuniform(480, 100, 1536 * 1024, 6,
                                     fs::Placement::kRoundRobin, doc_rng,
                                     fs::SizeDistribution::kUniform);
  spec.mix.kind = workload::MixSpec::Kind::kZipf;
  spec.mix.zipf_exponent = 1.4;  // the Table 3 hot-owner condition
  spec.clients = workload::ucsb_clients();
  spec.policy = "sweb";
  spec.burst.rps = 32.0;
  spec.burst.duration_s = 30.0;
  return spec;
}

std::string cell(const workload::ExperimentResult& r) {
  return bench::seconds_cell(r.summary.mean_response) + " s / " +
         metrics::fmt_pct(r.summary.drop_rate());
}

}  // namespace

int main() {
  using namespace sweb;
  bench::print_header(
      "Ablations", "What each SWEB mechanism contributes",
      "Non-uniform Zipf workload (Table 3 shape), 32 rps for 30 s, 6 Meiko "
      "nodes. Cells are mean response / drop rate.");

  metrics::Table table({"variant", "mean response / drop", "redirect rate"});

  {
    const auto r = workload::run_experiment(base_spec());
    table.add_row({"SWEB (all mechanisms)", cell(r),
                   metrics::fmt_pct(r.summary.redirect_rate())});
  }
  {
    workload::ExperimentSpec spec = base_spec();
    spec.server.delta = 0.0;  // no herd guard
    const auto r = workload::run_experiment(spec);
    table.add_row({"no Δ-inflation (herd risk)", cell(r),
                   metrics::fmt_pct(r.summary.redirect_rate())});
  }
  for (double period : {0.5, 10.0}) {
    workload::ExperimentSpec spec = base_spec();
    spec.server.loadd.period_s = period;
    spec.server.loadd.staleness_timeout_s = 3.0 * period;
    const auto r = workload::run_experiment(spec);
    table.add_row({"loadd period " + metrics::fmt(period, 1) + " s", cell(r),
                   metrics::fmt_pct(r.summary.redirect_rate())});
  }
  {
    workload::ExperimentSpec spec = base_spec();
    spec.server.max_redirects = 4;  // ping-pong allowed
    const auto r = workload::run_experiment(spec);
    table.add_row({"up to 4 redirects (ping-pong)", cell(r),
                   metrics::fmt_pct(r.summary.redirect_rate())});
  }
  {
    workload::ExperimentSpec spec = base_spec();
    spec.policy = "cpu-only";  // single-faceted baseline
    const auto r = workload::run_experiment(spec);
    table.add_row({"single-faceted (CPU-only)", cell(r),
                   metrics::fmt_pct(r.summary.redirect_rate())});
  }
  {
    workload::ExperimentSpec spec = base_spec();
    spec.server.broker.use_data_term = false;  // ignore disk/NFS costs
    const auto r = workload::run_experiment(spec);
    table.add_row({"no t_data term", cell(r),
                   metrics::fmt_pct(r.summary.redirect_rate())});
  }
  {
    workload::ExperimentSpec spec = base_spec();
    spec.server.broker.use_redirection_term = false;  // free redirects
    const auto r = workload::run_experiment(spec);
    table.add_row({"no t_redirection term", cell(r),
                   metrics::fmt_pct(r.summary.redirect_rate())});
  }
  {
    workload::ExperimentSpec spec = base_spec();
    spec.server.broker.fork_ops = 16e5;  // oracle overestimates CPU 4x
    const auto r = workload::run_experiment(spec);
    table.add_row({"oracle overestimates CPU 4x", cell(r),
                   metrics::fmt_pct(r.summary.redirect_rate())});
  }
  {
    workload::ExperimentSpec spec = base_spec();
    spec.server.reassignment = core::ServerParams::Reassignment::kForward;
    const auto r = workload::run_experiment(spec);
    table.add_row({"forwarding instead of 302s", cell(r),
                   metrics::fmt_pct(r.summary.redirect_rate())});
  }
  {
    workload::ExperimentSpec spec = base_spec();
    spec.server.centralized = true;
    const auto r = workload::run_experiment(spec);
    table.add_row({"centralized dispatcher (§3.1)", cell(r),
                   metrics::fmt_pct(r.summary.redirect_rate())});
  }
  {
    workload::ExperimentSpec spec = base_spec();
    spec.server.broker.cache_aware = true;  // cooperative-caching extension
    const auto r = workload::run_experiment(spec);
    table.add_row({"cache-aware broker (extension)", cell(r),
                   metrics::fmt_pct(r.summary.redirect_rate())});
  }
  std::printf("%s", table.render().c_str());
  bench::print_note(
      "expected shape: the full SWEB configuration is at or near the best "
      "cell; turning off cost terms or the herd guard costs response time; "
      "single-faceted scheduling is visibly worse on this I/O-heavy mix.");
  return 0;
}
