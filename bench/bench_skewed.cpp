// §4.2 skewed test: "the fundamental weakness of the file locality
// heuristic where each client accessed the same file located on a single
// server, effectively reducing the parallel system to a single server. In
// this situation, round-robin handily outperforms file locality, with
// average response times of 3.7s and 81.4s, respectively. This test was
// performed with six servers, 8 rps, for 45s, and file size of 1.5MB."
#include "bench_common.h"

namespace {

using namespace sweb;

workload::ExperimentResult run_cell(const char* policy,
                                    bool net_term = false,
                                    bool cache_aware = false) {
  workload::ExperimentSpec spec;
  spec.cluster = cluster::meiko_config(6);
  spec.docbase = fs::make_hotfile(1536 * 1024, /*owner=*/0);
  spec.clients = workload::ucsb_clients();
  spec.policy = policy;
  spec.mix.kind = workload::MixSpec::Kind::kSinglePath;
  spec.mix.fixed_path = "/hot/scene.tiff";
  spec.burst.rps = 8.0;
  spec.burst.duration_s = 45.0;
  spec.drain_s = 400.0;
  spec.server.broker.use_net_term = net_term;
  spec.server.broker.cache_aware = cache_aware;
  return workload::run_experiment(spec);
}

}  // namespace

int main() {
  using namespace sweb;
  bench::print_header(
      "Skewed test (§4.2)",
      "Every client fetches the same 1.5 MB file owned by one node",
      "6 Meiko nodes, 8 rps for 45 s. File locality funnels everything to "
      "the owner; round robin (and SWEB) serve cached copies everywhere.");

  metrics::Table table({"policy", "mean response", "drop rate", "paper"});
  for (const char* policy : {"round-robin", "file-locality", "sweb"}) {
    const auto r = run_cell(policy);
    const char* paper = std::string_view(policy) == "round-robin" ? "3.7 s"
                        : std::string_view(policy) == "file-locality"
                            ? "81.4 s"
                            : "-";
    table.add_row({policy,
                   r.summary.completed > 0
                       ? bench::seconds_cell(r.summary.mean_response) + " s"
                       : "timeout",
                   metrics::fmt_pct(r.summary.drop_rate()), paper});
  }
  std::printf("%s", table.render().c_str());
  bench::print_note(
      "expected shape: file locality ~20x worse than round robin (the "
      "paper's 3.7 s vs 81.4 s). The paper's SWEB skips the t_net term, so "
      "it cannot see the owner's saturated external link and lands between "
      "the two.");

  // Extensions: the t_net term the paper defined-but-skipped, and the
  // cooperative-caching-aware broker. Either lets SWEB escape the funnel.
  std::printf("\nSWEB variants on the same workload:\n");
  metrics::Table ext({"broker variant", "mean response"});
  ext.add_row({"paper broker (t_net skipped)",
               bench::seconds_cell(run_cell("sweb").summary.mean_response) +
                   " s"});
  ext.add_row({"+ t_net term",
               bench::seconds_cell(
                   run_cell("sweb", true).summary.mean_response) +
                   " s"});
  ext.add_row({"+ cache-aware",
               bench::seconds_cell(
                   run_cell("sweb", false, true).summary.mean_response) +
                   " s"});
  ext.add_row({"+ both",
               bench::seconds_cell(
                   run_cell("sweb", true, true).summary.mean_response) +
                   " s"});
  std::printf("%s", ext.render().c_str());
  return 0;
}
