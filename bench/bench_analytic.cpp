// §3.3 analysis: the maximum-sustained-rps bound vs. the simulator.
//
// Paper: "if b1 = 5MB/s and b2 = 4.5MB/s, O ~ 0, p = 6, r = 2.88, then the
// maximum sustained rps is 17.3 for 6 nodes", and "the analysis in Section
// 3.3 ... gave an analytical maximum sustained 17.8 rps for 1.5M files on
// the Meiko, consistent with the 16 rps achieved in practice."
#include "bench_common.h"
#include "core/analytic.h"

int main() {
  using namespace sweb;
  bench::print_header(
      "§3.3 analytic bound", "Analytic max sustained rps vs. measured",
      "r <= 1/[(1/p+d)F/b1 + (1-1/p-d)F/min(b1,b2) + A + d(A+O)], cluster "
      "max = p*r. Swept over node count for 1.5 MB files, then checked "
      "against the simulator's sustained search.");

  // The paper's worked example.
  core::AnalyticParams q;
  q.p = 6;
  q.F = 1.5e6;
  q.b1 = 5.0e6;
  q.b2 = 4.5e6;
  q.A = 0.02;
  q.O = 0.004;
  q.d = 0.0;
  std::printf("paper example (p=6, b1=5MB/s, b2=4.5MB/s): per-node r = %s, "
              "cluster = %s rps (paper: r = 2.88 -> 17.3 rps)\n\n",
              metrics::fmt(core::analytic_per_node_rps(q), 2).c_str(),
              metrics::fmt(core::analytic_max_rps(q), 1).c_str());

  metrics::Table table({"p", "analytic rps (d=0)", "analytic rps (d=0.3)",
                        "simulated sustained rps"});
  for (int p : {1, 2, 4, 6, 8}) {
    core::AnalyticParams qq = q;
    qq.p = p;
    core::AnalyticParams qd = qq;
    qd.d = 0.3;

    workload::ExperimentSpec spec =
        bench::meiko_spec(p, 1536 * 1024, 40 * static_cast<std::size_t>(p));
    // The §3.3 model assumes every fetch streams from a disk; turn the page
    // cache off so the simulator honors the same assumption.
    for (auto& node : spec.cluster.nodes) node.cache_fraction = 0.0;
    spec.policy = "sweb";
    spec.burst.duration_s = 120.0;
    workload::MaxRpsCriteria criteria;
    criteria.rps_ceiling = 64;
    const auto measured = workload::find_max_rps(spec, criteria);

    table.add_row({std::to_string(p),
                   metrics::fmt(core::analytic_max_rps(qq), 1),
                   metrics::fmt(core::analytic_max_rps(qd), 1),
                   std::to_string(measured.max_rps)});
  }
  std::printf("%s", table.render().c_str());
  bench::print_note(
      "expected shape: simulated sustained rps tracks the analytic bound "
      "from below (the paper: 16 measured vs 17.8 analytic at p=6), and "
      "both scale ~linearly with p. (Page caching is disabled here to "
      "honor the model's every-request-hits-disk assumption; with caching "
      "on, SWEB exceeds the disk-only bound.)");
  return 0;
}
