// Table 5: Cost distribution in the average response time — where a
// request's 5.4 seconds go on a loaded Meiko.
//
// Paper reference (1.5 MB file, Meiko CS-2, heavily loaded):
//   Preprocessing        70 ms
//   Req. Analysis (SWEB) 1 or 4 ms
//   Redirection (SWEB)   4 ms
//   Data Transfer        4.9 s
//   Network Costs        0.5 s
//   Total Client Time    5.4 s
// "Items marked SWEB are introduced by the SWEB system. ... well over 90%
// is spent doing data transfer."
#include "bench_common.h"

int main() {
  using namespace sweb;
  bench::print_header(
      "Table 5", "Cost distribution in average response time (1.5 MB, Meiko)",
      "16 rps for 30 s on 6 nodes with SWEB scheduling; per-phase means "
      "over completed requests, as instrumented inside the server.");

  workload::ExperimentSpec spec = bench::meiko_spec(6, 1536 * 1024, 240);
  spec.policy = "sweb";
  spec.burst.rps = 16.0;
  spec.burst.duration_s = 30.0;
  const auto result = workload::run_experiment(spec);
  const metrics::PhaseBreakdown& b = result.phases;

  metrics::Table table({"activity", "measured", "paper", "SWEB-introduced"});
  table.add_row({"DNS + connect",
                 metrics::fmt((b.dns + b.connect) * 1e3, 1) + " ms", "-",
                 "no"});
  table.add_row({"Listen-queue wait", metrics::fmt(b.queue * 1e3, 1) + " ms",
                 "-", "no"});
  table.add_row({"Preprocessing", metrics::fmt(b.preprocess * 1e3, 1) + " ms",
                 "70 ms", "no"});
  table.add_row({"Req. analysis", metrics::fmt(b.analysis * 1e3, 1) + " ms",
                 "1-4 ms", "yes"});
  table.add_row({"Redirection", metrics::fmt(b.redirect * 1e3, 1) + " ms",
                 "4 ms", "yes"});
  table.add_row({"Data transfer", metrics::fmt(b.data, 2) + " s", "4.9 s",
                 "no"});
  table.add_row({"Network send", metrics::fmt(b.send, 2) + " s", "0.5 s",
                 "no"});
  table.add_separator();
  table.add_row({"Total client time", metrics::fmt(b.total, 2) + " s",
                 "5.4 s", ""});
  std::printf("%s", table.render().c_str());

  const double sweb_share =
      b.total > 0.0 ? (b.analysis + b.redirect) / b.total : 0.0;
  std::printf("\nSWEB-introduced share of the response time: %s "
              "(paper: insignificant, ~0.1%%)\n",
              metrics::fmt_pct(sweb_share, 2).c_str());
  std::printf("Data-path share (data+send): %s (paper: well over 90%%)\n",
              metrics::fmt_pct((b.data + b.send) / b.total, 1).c_str());
  return 0;
}
