// Table 1: Maximum rps for a test duration of 30 s and 120 s on Meiko CS-2
// and NOW.
//
// Method (paper §4.1): "The maximum rps is determined by fixing the average
// file size and increasing the rps until requests start to fail." The short
// 30 s burst lets requests queue (only refused connections count as
// failures); the 120 s sustained test requires the system to keep up
// (timeouts count too).
//
// Paper reference values (where the text states them):
//   * single NCSA-class workstation: ~5 rps for typical pages
//   * Meiko 6-node, 1.5 MB sustained: 16 rps measured (17.8 analytic)
//   * NOW 4-node, 1.5 MB: 11 rps short, 1 rps sustained
//   * NOW single server, 1.5 MB sustained: < 1 rps
#include "bench_common.h"

namespace {

using namespace sweb;

struct Cell {
  int single = 0;
  int swebv = 0;
};

Cell measure(bool meiko, std::uint64_t file_size, bool sustained) {
  const int p = meiko ? 6 : 4;
  // Corpora several times the aggregate page cache, so max-rps reflects
  // disk/network capacity rather than cache residency.
  const std::size_t docs = file_size >= 1024 * 1024
                               ? (meiko ? 600 : 160)
                               : 600;
  workload::MaxRpsCriteria criteria;
  criteria.count_timeouts = sustained;
  criteria.max_drop_rate = 0.02;
  criteria.max_mean_response_s = 30.0;
  criteria.rps_ceiling = 384;

  const auto run = [&](int nodes) {
    workload::ExperimentSpec spec =
        meiko ? bench::meiko_spec(nodes, file_size, docs)
              : bench::now_spec(nodes, file_size, docs);
    spec.burst.duration_s = sustained ? 120.0 : 30.0;
    spec.policy = "sweb";
    return workload::find_max_rps(spec, criteria).max_rps;
  };
  Cell cell;
  cell.single = run(1);
  cell.swebv = run(p);
  return cell;
}

}  // namespace

int main() {
  bench::print_header(
      "Table 1", "Maximum rps, 30 s (short) vs 120 s (sustained)",
      "Fix the file size, raise rps until requests start to fail. Short "
      "tests count refused connections; sustained tests also count client "
      "timeouts. Meiko CS-2: 6 nodes; NOW: 4 nodes; SWEB scheduling.");

  struct Row {
    const char* label;
    bool meiko;
    std::uint64_t size;
  };
  const Row rows[] = {
      {"Meiko 1K", true, 1024},
      {"Meiko 1.5M", true, 1536 * 1024},
      {"NOW 1K", false, 1024},
      {"NOW 1.5M", false, 1536 * 1024},
  };

  metrics::Table table({"configuration", "single (30s)", "SWEB (30s)",
                        "single (120s)", "SWEB (120s)", "paper SWEB"});
  for (const Row& row : rows) {
    const Cell fast = measure(row.meiko, row.size, /*sustained=*/false);
    const Cell slow = measure(row.meiko, row.size, /*sustained=*/true);
    const char* paper = "-";
    if (row.meiko && row.size > 1024) paper = "16 sustained";
    if (!row.meiko && row.size > 1024) paper = "11 short / 1 sustained";
    table.add_row({row.label, bench::rps_cell(fast.single),
                   bench::rps_cell(fast.swebv), bench::rps_cell(slow.single),
                   bench::rps_cell(slow.swebv), paper});
  }
  std::printf("%s", table.render().c_str());
  bench::print_note(
      "expected shape: SWEB multiplies the single-server ceiling by ~p; "
      "short-period rps exceeds sustained rps (bursts queue in the listen "
      "backlog); NOW 1.5MB sustained collapses to ~1 rps at the shared "
      "Ethernet's bandwidth.");
  return 0;
}
