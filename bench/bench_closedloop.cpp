// Open-loop vs closed-loop load generation (methodology study).
//
// The paper's tests are open-loop ("at each second a constant number of
// requests are launched") while period benchmarking tools (WebStone) were
// closed-loop (N users, think time). The same saturated server looks very
// different through the two lenses — a classic measurement pitfall this
// bench makes concrete on the 1-node Meiko serving 1.5 MB files
// (capacity ~3 rps).
#include "bench_common.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/audit.h"
#include "obs/json.h"
#include "obs/phase.h"
#include "obs/registry.h"
#include "runtime/client.h"
#include "runtime/mini_cluster.h"
#include "util/rng.h"
#include "workload/closed_loop.h"

namespace {

using namespace sweb;

workload::ExperimentSpec base_spec() {
  workload::ExperimentSpec spec = bench::meiko_spec(1, 1536 * 1024, 64);
  spec.policy = "round-robin";  // one node: scheduling is moot
  return spec;
}

/// The real-sockets runtime under a multi-client closed loop: one node,
/// `max_workers` worker threads, `clients` client threads each issuing
/// `per_client` sequential requests against a CGI endpoint that holds a
/// worker for ~2 ms (standing in for disk/CPU service time). Returns
/// achieved requests/second. With max_workers=1 this is the old serial
/// accept loop; with a real pool the clients are served in parallel.
double run_runtime_closed_loop(int max_workers, int clients, int per_client) {
  const fs::Docbase docbase = fs::make_uniform(
      8, 2048, 1, fs::Placement::kRoundRobin, nullptr, "/docs");
  runtime::MiniClusterOptions options;
  options.max_workers = max_workers;
  options.max_pending = 256;  // don't shed: we are measuring HOL blocking
  runtime::MiniCluster cluster(1, docbase, options);
  cluster.docs_mutable().register_cgi(
      "/cgi/work.cgi", 0, [](const http::Request&, std::string_view) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        return http::make_ok("done", "text/plain");
      });
  cluster.start();
  const std::string url = "http://127.0.0.1:" +
                          std::to_string(cluster.port(0)) + "/cgi/work.cgi";
  std::atomic<int> ok{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&ok, &url, per_client] {
      for (int i = 0; i < per_client; ++i) {
        const auto result = runtime::fetch(url);
        if (result && http::code(result->response.status) == 200) ++ok;
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed_s = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
  cluster.stop();
  return elapsed_s > 0.0 ? static_cast<double>(ok.load()) / elapsed_s : 0.0;
}

}  // namespace

int main() {
  using namespace sweb;
  bench::print_header(
      "Open vs closed loop", "The same saturated server, two lenses",
      "1-node Meiko, 1.5 MB files (capacity ~3 rps). Open loop: fixed "
      "arrival rate for 30 s. Closed loop: N virtual users with 1 s mean "
      "think time for 60 s.");

  std::printf("open loop (fixed arrival rate):\n");
  metrics::Table open_table(
      {"offered rps", "achieved rps", "mean resp", "p95 resp", "drop"});
  for (double rps : {2.0, 4.0, 8.0, 16.0}) {
    workload::ExperimentSpec spec = base_spec();
    spec.burst.rps = rps;
    spec.burst.duration_s = 30.0;
    const auto r = workload::run_experiment(spec);
    open_table.add_row({metrics::fmt(rps, 0),
                        metrics::fmt(r.achieved_rps, 1),
                        bench::seconds_cell(r.summary.mean_response) + " s",
                        bench::seconds_cell(r.summary.p95_response) + " s",
                        metrics::fmt_pct(r.summary.drop_rate())});
  }
  std::printf("%s\n", open_table.render().c_str());

  std::printf("closed loop (N users, 1 s think):\n");
  metrics::Table closed_table(
      {"users", "throughput rps", "mean resp", "p95 resp", "drop"});
  for (int users : {2, 8, 24, 64}) {
    workload::ClosedLoopSpec loop;
    loop.num_clients = users;
    loop.think_mean_s = 1.0;
    loop.duration_s = 60.0;
    const auto r = workload::run_closed_loop(base_spec(), loop);
    closed_table.add_row({std::to_string(users),
                          metrics::fmt(r.throughput_rps, 1),
                          bench::seconds_cell(r.mean_response) + " s",
                          bench::seconds_cell(r.summary.p95_response) + " s",
                          metrics::fmt_pct(r.summary.drop_rate())});
  }
  std::printf("%s", closed_table.render().c_str());
  bench::print_note(
      "expected shape: past ~3 rps the open loop reports runaway latency "
      "and mass drops at a pinned 'offered' rate, while the closed loop "
      "self-throttles — throughput plateaus at capacity, latency grows "
      "only with the user population, and almost nothing drops.");

  // --- Perf trajectory seed: an instrumented multi-node closed loop -------
  // 4-node Meiko under the sweb policy with the decision audit attached;
  // the machine-readable report (rps, latency percentiles, redirect ratio,
  // prediction-error summary) lands in BENCH_PR2.json so future PRs can
  // diff the scheduler's accuracy, not just its speed.
  std::printf("\ninstrumented closed loop (4-node Meiko, sweb policy):\n");
  obs::Registry registry;
  obs::DecisionAudit audit;
  audit.bind_registry(registry);
  workload::ExperimentSpec spec = bench::meiko_spec(4, 256 * 1024, 96);
  spec.policy = "sweb";
  spec.registry = &registry;
  spec.audit = &audit;
  workload::ClosedLoopSpec loop;
  loop.num_clients = 32;
  loop.think_mean_s = 1.0;
  loop.duration_s = 60.0;
  const auto run = workload::run_closed_loop(spec, loop);

  const obs::RegistrySnapshot snap = registry.snapshot();
  const auto quantiles = [&snap](const char* name, obs::JsonWriter& w) {
    w.begin_object();
    const auto it = snap.histograms.find(name);
    if (it == snap.histograms.end()) {
      w.key("count").value(std::uint64_t{0});
      w.key("p50_s").value(0.0);
      w.key("p95_s").value(0.0);
    } else {
      w.key("count").value(it->second.count);
      w.key("p50_s").value(obs::histogram_quantile(it->second, 0.50));
      w.key("p95_s").value(obs::histogram_quantile(it->second, 0.95));
    }
    w.end_object();
  };
  const auto counter = [&snap](const char* name) {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? std::uint64_t{0} : it->second;
  };

  obs::JsonWriter w;
  w.begin_object();
  w.key("bench").value("closedloop");
  w.key("pr").value(2);
  w.key("config").begin_object();
  w.key("nodes").value(4);
  w.key("policy").value("sweb");
  w.key("users").value(loop.num_clients);
  w.key("think_mean_s").value(loop.think_mean_s);
  w.key("duration_s").value(loop.duration_s);
  w.key("file_bytes").value(std::int64_t{256 * 1024});
  w.end_object();
  w.key("rps").value(run.throughput_rps);
  w.key("latency").begin_object();
  w.key("mean_s").value(run.summary.mean_response);
  w.key("p50_s").value(run.summary.p50_response);
  w.key("p95_s").value(run.summary.p95_response);
  w.end_object();
  w.key("redirect_ratio").value(run.summary.redirect_rate());
  w.key("drop_rate").value(run.summary.drop_rate());
  w.key("predict_error").begin_object();
  w.key("decisions").value(counter("broker.audit.decisions"));
  w.key("joined").value(counter("broker.audit.joined"));
  w.key("mispredicts").value(counter("oracle.mispredict"));
  w.key("t_redirection");
  quantiles("broker.predict_error.t_redirection", w);
  w.key("t_data");
  quantiles("broker.predict_error.t_data", w);
  w.key("t_cpu");
  quantiles("broker.predict_error.t_cpu", w);
  w.key("total");
  quantiles("broker.predict_error.total", w);
  w.end_object();
  w.end_object();

  std::printf(
      "  rps %.1f  mean %.2fs  p95 %.2fs  redirects %.0f%%  "
      "decisions %llu joined %llu\n",
      run.throughput_rps, run.summary.mean_response,
      run.summary.p95_response, 100.0 * run.summary.redirect_rate(),
      static_cast<unsigned long long>(counter("broker.audit.decisions")),
      static_cast<unsigned long long>(counter("broker.audit.joined")));
  if (!bench::write_json_report("BENCH_PR2.json", w.str())) return 1;

  // --- PR3: the sockets runtime, serial accept loop vs worker pool --------
  // Same closed-loop lens pointed at the real server: 8 client threads,
  // ~2 ms service time per request. The serial configuration (1 worker) is
  // the old head-of-line-blocked accept loop; the pooled one serves the
  // clients concurrently.
  std::printf("\nruntime closed loop (1 node, 8 clients, ~2 ms service):\n");
  constexpr int kClients = 8;
  constexpr int kPerClient = 25;
  constexpr int kPoolWorkers = 16;
  const double serial_rps = run_runtime_closed_loop(1, kClients, kPerClient);
  const double pooled_rps =
      run_runtime_closed_loop(kPoolWorkers, kClients, kPerClient);
  const double speedup = serial_rps > 0.0 ? pooled_rps / serial_rps : 0.0;
  std::printf("  serial (1 worker)   %7.1f rps\n", serial_rps);
  std::printf("  pooled (%2d workers) %7.1f rps   (%.1fx)\n", kPoolWorkers,
              pooled_rps, speedup);
  bench::print_note(
      "expected shape: the pooled node overlaps the clients' service "
      "times, so multi-client rps rises well above the serial baseline "
      "(bounded by min(clients, workers)).");

  obs::JsonWriter pr3;
  pr3.begin_object();
  pr3.key("bench").value("closedloop");
  pr3.key("pr").value(3);
  pr3.key("config").begin_object();
  pr3.key("nodes").value(1);
  pr3.key("clients").value(kClients);
  pr3.key("requests_per_client").value(kPerClient);
  pr3.key("service_ms").value(2.0);
  pr3.key("pool_workers").value(kPoolWorkers);
  pr3.end_object();
  pr3.key("serial_rps").value(serial_rps);
  pr3.key("pooled_rps").value(pooled_rps);
  pr3.key("speedup").value(speedup);
  pr3.end_object();
  if (!bench::write_json_report("BENCH_PR3.json", pr3.str())) return 1;

  // --- PR4: liveness drill — crash a node under closed-loop load ----------
  // 4-node runtime cluster with a fast loadd tick (50 ms heartbeat, 250 ms
  // staleness). Closed-loop clients hammer nodes 0-2 while node 3 crashes
  // and later recovers. Measured: how long the failure detector takes to
  // rope the node off, how many requests the origin fallback had to bridge
  // during the blind window, and that no client ever saw an error.
  std::printf("\nliveness drill (4 nodes, crash + recover under load):\n");
  const double detect_budget_s = 0.25;  // the staleness timeout
  runtime::MiniClusterOptions chaos_options;
  chaos_options.heartbeat_period = std::chrono::milliseconds(50);
  chaos_options.staleness_timeout = std::chrono::milliseconds(250);
  const fs::Docbase chaos_docs = fs::make_uniform(
      16, 8192, 4, fs::Placement::kRoundRobin, nullptr, "/docs");
  runtime::MiniCluster chaos(4, chaos_docs, chaos_options);
  chaos.start();

  std::atomic<bool> chaos_stop{false};
  std::atomic<std::uint64_t> chaos_ok{0};
  std::atomic<std::uint64_t> chaos_failed{0};
  std::atomic<std::uint64_t> chaos_fallbacks{0};
  std::vector<std::thread> chaos_clients;
  for (int c = 0; c < 8; ++c) {
    chaos_clients.emplace_back([&chaos, &chaos_stop, &chaos_ok, &chaos_failed,
                                &chaos_fallbacks, c] {
      for (int i = 0; !chaos_stop.load(std::memory_order_relaxed); ++i) {
        const std::string url =
            "http://127.0.0.1:" + std::to_string(chaos.port((c + i) % 3)) +
            "/docs/file" + std::to_string((c * 5 + i) % 16) + ".html";
        const auto result = runtime::fetch(url);
        if (result && http::code(result->response.status) == 200) {
          ++chaos_ok;
          if (result->origin_fallback) ++chaos_fallbacks;
        } else {
          ++chaos_failed;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));  // warm up

  const auto crash_at = std::chrono::steady_clock::now();
  chaos.crash(3);
  while (chaos.board().snapshot(3).available) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const double detect_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - crash_at)
                              .count();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));  // routed-around

  const auto recover_at = std::chrono::steady_clock::now();
  chaos.recover(3);
  while (!chaos.board().snapshot(3).available) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const double rejoin_s = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - recover_at)
                              .count();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));  // re-admitted
  chaos_stop.store(true);
  for (auto& t : chaos_clients) t.join();
  chaos.stop();

  std::printf("  requests %llu  failed %llu  fallback-bridged %llu\n",
              static_cast<unsigned long long>(chaos_ok.load()),
              static_cast<unsigned long long>(chaos_failed.load()),
              static_cast<unsigned long long>(chaos_fallbacks.load()));
  std::printf("  detected down in %.0f ms (budget %.0f ms)  rejoined in "
              "%.0f ms\n",
              1000.0 * detect_s, 1000.0 * detect_budget_s, 1000.0 * rejoin_s);
  bench::print_note(
      "expected shape: zero failures — the origin fallback bridges the "
      "blind window between the crash and detection, detection lands "
      "within one staleness timeout, and recovery is immediate (the "
      "rejoining node's first heartbeat re-admits it).");

  obs::JsonWriter pr4;
  pr4.begin_object();
  pr4.key("bench").value("closedloop");
  pr4.key("pr").value(4);
  pr4.key("config").begin_object();
  pr4.key("nodes").value(4);
  pr4.key("clients").value(8);
  pr4.key("heartbeat_ms").value(std::int64_t{50});
  pr4.key("staleness_ms").value(std::int64_t{250});
  pr4.end_object();
  pr4.key("requests_ok").value(chaos_ok.load());
  pr4.key("requests_failed").value(chaos_failed.load());
  pr4.key("fallback_bridged").value(chaos_fallbacks.load());
  pr4.key("detect_s").value(detect_s);
  pr4.key("detect_budget_s").value(detect_budget_s);
  pr4.key("rejoin_s").value(rejoin_s);
  pr4.end_object();
  if (!bench::write_json_report("BENCH_PR4.json", pr4.str())) return 1;

  // --- PR5: degraded-link drill — one node behind a lossy/slow pipe -------
  // 4-node runtime cluster; node 3's link is chaos-injected (latency +
  // jitter, byte throttle, torn writes, probabilistic mid-stream resets)
  // while 8 closed-loop clients with the real retry policy hammer all four
  // nodes. Measured: client-visible errors (must be zero — the retry
  // policy absorbs every injected fault), the p50/p99 latency the
  // degradation costs, and how many retries/resets it took.
  std::printf("\ndegraded-link drill (4 nodes, node 3 lossy + slow):\n");
  const double p99_budget_s = 2.0;
  runtime::FaultPlan lossy;
  lossy.read_delay = std::chrono::milliseconds(5);
  lossy.write_delay = std::chrono::milliseconds(5);
  lossy.delay_jitter = std::chrono::milliseconds(3);
  lossy.throttle_bytes_per_sec = 512 * 1024;
  lossy.torn_write_max_bytes = 512;
  lossy.reset_probability = 0.1;
  lossy.reset_after_bytes = 256;
  runtime::MiniClusterOptions degraded_options;
  degraded_options.chaos = lossy;
  degraded_options.chaos_node = 3;
  // Forensics on: every chaos-faulted request (and any request past the
  // budget) leaves a slow-log record with its full phase vector.
  degraded_options.slow_budget = std::chrono::milliseconds(250);
  const fs::Docbase degraded_docs = fs::make_uniform(
      16, 8192, 4, fs::Placement::kRoundRobin, nullptr, "/docs");
  runtime::MiniCluster degraded(4, degraded_docs, degraded_options);
  degraded.start();

  constexpr int kChaosClients = 8;
  constexpr int kChaosPerClient = 40;
  std::atomic<std::uint64_t> degraded_ok{0};
  std::atomic<std::uint64_t> degraded_failed{0};
  std::atomic<std::uint64_t> degraded_retried{0};
  // Streaming log-bucket histogram instead of stored samples: every client
  // thread records lock-free, percentiles come out of the buckets, memory
  // stays flat however long the drill runs.
  obs::Histogram latency_hist(obs::log_latency_bounds());
  std::vector<std::thread> degraded_clients;
  for (int c = 0; c < kChaosClients; ++c) {
    degraded_clients.emplace_back([&degraded, &degraded_ok, &degraded_failed,
                                   &degraded_retried, &latency_hist, c] {
      runtime::FetchOptions fo;
      fo.registry = &degraded.registry();
      fo.retry.seed = 0x5eb50000ULL + static_cast<std::uint64_t>(c);
      runtime::FetchSession session(fo);
      for (int i = 0; i < kChaosPerClient; ++i) {
        // Every fourth request hits the degraded node directly; the rest
        // reach it via the broker's redirects when it looks idle.
        const std::string url =
            "http://127.0.0.1:" +
            std::to_string(degraded.port((c + i) % 4)) + "/docs/file" +
            std::to_string((c * 7 + i) % 16) + ".html";
        const auto t0 = std::chrono::steady_clock::now();
        const auto result = session.fetch(url);
        const double latency_s = std::chrono::duration<double>(
                                     std::chrono::steady_clock::now() - t0)
                                     .count();
        if (result && http::code(result->response.status) == 200 &&
            result->response.body.size() == 8192) {
          ++degraded_ok;
          if (result->attempts > 1) ++degraded_retried;
          latency_hist.observe(latency_s);
        } else {
          ++degraded_failed;
        }
      }
    });
  }
  for (auto& t : degraded_clients) t.join();
  const std::uint64_t resets_injected =
      degraded.node(3).chaos().resets_injected();
  const std::uint64_t faulted =
      degraded.node(3).chaos().connections_faulted();
  const obs::RegistrySnapshot degraded_snap = degraded.registry().snapshot();
  const auto degraded_counter = [&degraded_snap](const char* name) {
    const auto it = degraded_snap.counters.find(name);
    return it == degraded_snap.counters.end() ? std::uint64_t{0}
                                              : it->second;
  };
  const std::uint64_t degraded_slow_records =
      degraded.slow_log().total_recorded();
  degraded.stop();

  const obs::RegistrySnapshot::HistogramValue degraded_latency =
      obs::histogram_value(latency_hist);
  const double chaos_p50_s = obs::histogram_quantile(degraded_latency, 0.50);
  const double chaos_p99_s = obs::histogram_quantile(degraded_latency, 0.99);

  std::printf("  requests %llu  failed %llu  retried %llu  "
              "resets-injected %llu\n",
              static_cast<unsigned long long>(degraded_ok.load()),
              static_cast<unsigned long long>(degraded_failed.load()),
              static_cast<unsigned long long>(degraded_retried.load()),
              static_cast<unsigned long long>(resets_injected));
  std::printf("  latency p50 %.0f ms  p99 %.0f ms  (budget %.0f ms)\n",
              1000.0 * chaos_p50_s, 1000.0 * chaos_p99_s,
              1000.0 * p99_budget_s);
  bench::print_note(
      "expected shape: zero failures — the retry policy (backoff, "
      "Retry-After, origin fallback) absorbs the injected resets while "
      "torn/throttled transfers merely slow down; p99 stays bounded "
      "because every fault is either survived in-line or retried within "
      "the policy's deadline budget.");

  obs::JsonWriter pr5;
  pr5.begin_object();
  pr5.key("bench").value("closedloop");
  pr5.key("pr").value(5);
  pr5.key("config").begin_object();
  pr5.key("nodes").value(4);
  pr5.key("degraded_node").value(3);
  pr5.key("clients").value(kChaosClients);
  pr5.key("requests_per_client").value(kChaosPerClient);
  pr5.key("read_delay_ms").value(std::int64_t{5});
  pr5.key("write_delay_ms").value(std::int64_t{5});
  pr5.key("jitter_ms").value(std::int64_t{3});
  pr5.key("throttle_bytes_per_sec").value(std::int64_t{512 * 1024});
  pr5.key("torn_write_max_bytes").value(std::int64_t{512});
  pr5.key("reset_probability").value(0.1);
  pr5.key("reset_after_bytes").value(std::int64_t{256});
  pr5.end_object();
  pr5.key("requests_ok").value(degraded_ok.load());
  pr5.key("requests_failed").value(degraded_failed.load());
  pr5.key("requests_retried").value(degraded_retried.load());
  pr5.key("client_retries").value(degraded_counter("client.retries"));
  pr5.key("retry_exhausted")
      .value(degraded_counter("client.retry_exhausted"));
  pr5.key("connections_faulted").value(faulted);
  pr5.key("resets_injected").value(resets_injected);
  pr5.key("latency").begin_object();
  pr5.key("p50_s").value(chaos_p50_s);
  pr5.key("p99_s").value(chaos_p99_s);
  pr5.key("p99_budget_s").value(p99_budget_s);
  pr5.key("p99_within_budget").value(chaos_p99_s <= p99_budget_s);
  pr5.key("slow_records").value(degraded_slow_records);
  pr5.end_object();
  pr5.end_object();
  if (!bench::write_json_report("BENCH_PR5.json", pr5.str())) return 1;

  // --- PR6: request-lifecycle telemetry under the standardized schema -----
  // A clean 4-node baseline with the per-phase histograms live, reported in
  // the sweb-bench/1 shape that tools/bench_compare validates: three fixed
  // scenarios (baseline, crash_drill, degraded_link) so every future PR
  // lands a directly comparable point on the trajectory. The drill numbers
  // reuse the runs above; the baseline is measured fresh here.
  std::printf("\nphase-telemetry baseline (4 nodes, per-phase breakdown):\n");
  runtime::MiniClusterOptions base6_options;
  base6_options.slow_budget = std::chrono::milliseconds(250);
  const fs::Docbase base6_docs = fs::make_uniform(
      16, 8192, 4, fs::Placement::kRoundRobin, nullptr, "/docs");
  runtime::MiniCluster base6(4, base6_docs, base6_options);
  base6.docs_mutable().register_cgi(
      "/cgi/work.cgi", 0, [](const http::Request&, std::string_view) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        return http::make_ok("done", "text/plain");
      });
  base6.start();
  constexpr int kBaseClients = 8;
  constexpr int kBasePerClient = 40;
  std::atomic<std::uint64_t> base_ok{0};
  std::atomic<std::uint64_t> base_failed{0};
  const auto base_start = std::chrono::steady_clock::now();
  std::vector<std::thread> base_clients;
  for (int c = 0; c < kBaseClients; ++c) {
    base_clients.emplace_back([&base6, &base_ok, &base_failed, c] {
      for (int i = 0; i < kBasePerClient; ++i) {
        // One CGI request in eight keeps the cgi_exec phase populated; the
        // rest are static documents spread over all four nodes.
        const std::string url =
            i % 8 == 0
                ? "http://127.0.0.1:" +
                      std::to_string(base6.port((c + i) % 4)) +
                      "/cgi/work.cgi"
                : "http://127.0.0.1:" +
                      std::to_string(base6.port((c + i) % 4)) +
                      "/docs/file" + std::to_string((c * 7 + i) % 16) +
                      ".html";
        const auto result = runtime::fetch(url);
        if (result && http::code(result->response.status) == 200) {
          ++base_ok;
        } else {
          ++base_failed;
        }
      }
    });
  }
  for (auto& t : base_clients) t.join();
  const double base_elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    base_start)
          .count();
  const double base_rps =
      base_elapsed_s > 0.0
          ? static_cast<double>(base_ok.load()) / base_elapsed_s
          : 0.0;
  const std::uint64_t base_slow_records = base6.slow_log().total_recorded();
  const obs::RegistrySnapshot base_snap = base6.registry().snapshot();
  base6.stop();

  // Cluster-wide phase digest: merge the four nodes' per-phase histograms
  // (identical √2 ladders, so the merge is exact, not an approximation).
  const auto merged_phase = [&base_snap](const char* name)
      -> std::optional<obs::RegistrySnapshot::HistogramValue> {
    std::optional<obs::RegistrySnapshot::HistogramValue> acc;
    for (int n = 0; n < 4; ++n) {
      const auto it = base_snap.histograms.find(
          "node." + std::to_string(n) + ".phase." + name);
      if (it == base_snap.histograms.end()) continue;
      if (!acc) {
        acc = it->second;
      } else if (const auto merged =
                     obs::merge_histogram_values(*acc, it->second)) {
        acc = *merged;
      }
    }
    return acc;
  };

  metrics::Table phase_table({"phase", "count", "p50", "p95", "p99"});
  obs::JsonWriter pr6;
  pr6.begin_object();
  pr6.key("schema").value("sweb-bench/1");
  pr6.key("bench").value("closedloop");
  pr6.key("pr").value(6);
  pr6.key("scenarios").begin_object();
  pr6.key("baseline").begin_object();
  pr6.key("config").begin_object();
  pr6.key("nodes").value(4);
  pr6.key("clients").value(kBaseClients);
  pr6.key("requests_per_client").value(kBasePerClient);
  pr6.key("file_bytes").value(std::int64_t{8192});
  pr6.key("slow_budget_ms").value(std::int64_t{250});
  pr6.end_object();
  pr6.key("rps").value(base_rps);
  pr6.key("requests_ok").value(base_ok.load());
  pr6.key("requests_failed").value(base_failed.load());
  pr6.key("slow_records").value(base_slow_records);
  const auto total_phase = merged_phase("total");
  pr6.key("latency").begin_object();
  pr6.key("p50_s").value(
      total_phase ? obs::histogram_quantile(*total_phase, 0.50) : 0.0);
  pr6.key("p95_s").value(
      total_phase ? obs::histogram_quantile(*total_phase, 0.95) : 0.0);
  pr6.key("p99_s").value(
      total_phase ? obs::histogram_quantile(*total_phase, 0.99) : 0.0);
  pr6.end_object();
  pr6.key("phases").begin_object();
  for (const obs::Phase phase : obs::all_phases()) {
    const char* name = obs::phase_name(phase);
    const auto merged = merged_phase(name);
    const std::uint64_t count = merged ? merged->count : 0;
    const double p50 =
        merged && count > 0 ? obs::histogram_quantile(*merged, 0.50) : 0.0;
    const double p95 =
        merged && count > 0 ? obs::histogram_quantile(*merged, 0.95) : 0.0;
    const double p99 =
        merged && count > 0 ? obs::histogram_quantile(*merged, 0.99) : 0.0;
    pr6.key(name).begin_object();
    pr6.key("count").value(count);
    pr6.key("p50_s").value(p50);
    pr6.key("p95_s").value(p95);
    pr6.key("p99_s").value(p99);
    pr6.end_object();
    char p50_cell[32], p95_cell[32], p99_cell[32];
    std::snprintf(p50_cell, sizeof p50_cell, "%.2fms", 1e3 * p50);
    std::snprintf(p95_cell, sizeof p95_cell, "%.2fms", 1e3 * p95);
    std::snprintf(p99_cell, sizeof p99_cell, "%.2fms", 1e3 * p99);
    phase_table.add_row({name, std::to_string(count), p50_cell, p95_cell,
                         p99_cell});
  }
  pr6.end_object();  // phases
  pr6.end_object();  // baseline
  pr6.key("crash_drill").begin_object();
  pr6.key("requests_ok").value(chaos_ok.load());
  pr6.key("requests_failed").value(chaos_failed.load());
  pr6.key("fallback_bridged").value(chaos_fallbacks.load());
  pr6.key("detect_s").value(detect_s);
  pr6.key("detect_budget_s").value(detect_budget_s);
  pr6.key("rejoin_s").value(rejoin_s);
  pr6.end_object();
  pr6.key("degraded_link").begin_object();
  pr6.key("requests_ok").value(degraded_ok.load());
  pr6.key("requests_failed").value(degraded_failed.load());
  pr6.key("requests_retried").value(degraded_retried.load());
  pr6.key("connections_faulted").value(faulted);
  pr6.key("resets_injected").value(resets_injected);
  pr6.key("slow_records").value(degraded_slow_records);
  pr6.key("latency").begin_object();
  pr6.key("p50_s").value(chaos_p50_s);
  pr6.key("p99_s").value(chaos_p99_s);
  pr6.end_object();
  pr6.end_object();  // degraded_link
  pr6.end_object();  // scenarios
  pr6.end_object();

  std::printf("%s", phase_table.render().c_str());
  std::printf("  rps %.1f  ok %llu  failed %llu  slow-records %llu\n",
              base_rps, static_cast<unsigned long long>(base_ok.load()),
              static_cast<unsigned long long>(base_failed.load()),
              static_cast<unsigned long long>(base_slow_records));
  bench::print_note(
      "expected shape: doc_read/write dominate the static requests, "
      "cgi_exec sits near its 1 ms sleep, queue_wait stays near zero with "
      "idle workers, and the phase sum tracks the total column.");
  if (!bench::write_json_report("BENCH_PR6.json", pr6.str())) return 1;

  // --- PR8: zero-copy page cache under a Zipf request stream --------------
  // The same closed loop swept over three per-node cache budgets: 0 (every
  // request takes the copy path — the pre-cache server), a tight budget
  // that only fits the Zipf head (the tail keeps churning the LRU), and a
  // warm budget that holds the whole docbase after first touch. Clients
  // fetch with the at-most-once marker so every serve is local — the sweep
  // measures copy-path vs writev hot-path cost, not redirect placement.
  std::printf(
      "\nzero-copy cache sweep (4 nodes, Zipf s=1.1, 24 x 1 MiB docs):\n");
  constexpr int kCacheNodes = 4;
  constexpr int kCacheClients = 8;
  constexpr int kCachePerClient = 80;
  constexpr std::size_t kCacheDocCount = 24;
  constexpr std::uint64_t kCacheDocBytes = 1024 * 1024;
  struct CachePoint {
    const char* label;
    std::uint64_t budget_bytes;
    double rps = 0.0;
    double hit_rate = 0.0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    double doc_read_p50_s = 0.0;
    double doc_read_p95_s = 0.0;
    std::uint64_t ok = 0;
    std::uint64_t failed = 0;
    int status_hit_nodes = 0;  // nodes whose /sweb/status reports hits > 0
  };
  CachePoint sweep[] = {
      {"copy-path (cache off)", 0},
      {"tight (8 MiB/node)", 8ull * 1024 * 1024},
      {"warm (64 MiB/node)", 64ull * 1024 * 1024},
  };
  const fs::Docbase cache_docs =
      fs::make_uniform(kCacheDocCount, kCacheDocBytes, kCacheNodes,
                       fs::Placement::kRoundRobin, nullptr, "/cache");
  for (CachePoint& point : sweep) {
    runtime::MiniClusterOptions opt;
    opt.cache_bytes_per_node = point.budget_bytes;
    runtime::MiniCluster sweep_cluster(kCacheNodes, cache_docs, opt);
    sweep_cluster.start();
    // Steady-state measurement: touch every document at every node first
    // so the timed window isn't dominated by compulsory misses (under the
    // tight budget the warm-up still churns — that is the point of it).
    for (int n = 0; n < kCacheNodes; ++n) {
      for (std::size_t d = 0; d < kCacheDocCount; ++d) {
        (void)runtime::fetch(
            "http://127.0.0.1:" + std::to_string(sweep_cluster.port(n)) +
            "/cache/file" + std::to_string(d) + ".tiff?sweb-hop=1");
      }
    }
    // Baselines taken after warm-up: hit rates and phase latencies below
    // describe the timed window only.
    std::uint64_t warm_hits = 0;
    std::uint64_t warm_misses = 0;
    for (int n = 0; n < kCacheNodes; ++n) {
      warm_hits += sweep_cluster.caches().node(n).hits();
      warm_misses += sweep_cluster.caches().node(n).misses();
    }
    const obs::RegistrySnapshot pre_snap =
        sweep_cluster.registry().snapshot();
    std::atomic<std::uint64_t> sweep_ok{0};
    std::atomic<std::uint64_t> sweep_failed{0};
    const auto sweep_start = std::chrono::steady_clock::now();
    std::vector<std::thread> sweep_clients;
    for (int c = 0; c < kCacheClients; ++c) {
      sweep_clients.emplace_back([&sweep_cluster, &sweep_ok, &sweep_failed,
                                  c] {
        util::Rng rng(static_cast<std::uint64_t>(1000 + c));
        for (int i = 0; i < kCachePerClient; ++i) {
          // Zipf-popular document, fetched directly at a rotating node with
          // the hop marker set: the contacted node must serve locally, so
          // every node sees the popular head and warms its own cache.
          const std::size_t doc = rng.zipf(kCacheDocCount, 1.1);
          const std::string url =
              "http://127.0.0.1:" +
              std::to_string(sweep_cluster.port((c + i) % kCacheNodes)) +
              "/cache/file" + std::to_string(doc) + ".tiff?sweb-hop=1";
          const auto result = runtime::fetch(url);
          if (result && http::code(result->response.status) == 200 &&
              result->response.body.size() == kCacheDocBytes) {
            ++sweep_ok;
          } else {
            ++sweep_failed;
          }
        }
      });
    }
    for (auto& t : sweep_clients) t.join();
    const double sweep_elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sweep_start)
            .count();
    point.ok = sweep_ok.load();
    point.failed = sweep_failed.load();
    point.rps = sweep_elapsed_s > 0.0
                    ? static_cast<double>(point.ok) / sweep_elapsed_s
                    : 0.0;
    for (int n = 0; n < kCacheNodes; ++n) {
      point.hits += sweep_cluster.caches().node(n).hits();
      point.misses += sweep_cluster.caches().node(n).misses();
      // Cross-check residency through the wire: the status endpoint must
      // agree with the in-process counters on every node. (Checked before
      // the warm-up subtraction — the endpoint reports lifetime totals.)
      const auto status = runtime::fetch(
          "http://127.0.0.1:" + std::to_string(sweep_cluster.port(n)) +
          "/sweb/status");
      if (!status) continue;
      const auto doc = obs::json_parse(status->response.body);
      if (!doc) continue;
      const obs::JsonValue* cache = doc->find("cache");
      if (cache != nullptr && cache->number_or("hits", 0.0) > 0.0) {
        ++point.status_hit_nodes;
      }
    }
    point.hits -= warm_hits;
    point.misses -= warm_misses;
    point.hit_rate =
        point.hits + point.misses > 0
            ? static_cast<double>(point.hits) /
                  static_cast<double>(point.hits + point.misses)
            : 0.0;
    // Timed-window doc_read digest: per-node post-minus-pre bucket deltas
    // (identical ladders), merged across the nodes. Extremes cannot be
    // subtracted, so the delta keeps the infinities — quantiles over the
    // window are unclamped, which only widens them.
    const obs::RegistrySnapshot sweep_snap =
        sweep_cluster.registry().snapshot();
    std::optional<obs::RegistrySnapshot::HistogramValue> doc_read;
    for (int n = 0; n < kCacheNodes; ++n) {
      const std::string key =
          "node." + std::to_string(n) + ".phase.doc_read";
      const auto it = sweep_snap.histograms.find(key);
      if (it == sweep_snap.histograms.end()) continue;
      obs::RegistrySnapshot::HistogramValue window = it->second;
      if (const auto pre = pre_snap.histograms.find(key);
          pre != pre_snap.histograms.end() &&
          pre->second.bucket_counts.size() ==
              window.bucket_counts.size()) {
        for (std::size_t b = 0; b < window.bucket_counts.size(); ++b) {
          window.bucket_counts[b] -= pre->second.bucket_counts[b];
        }
        window.count -= pre->second.count;
        window.sum -= pre->second.sum;
        window.min_value = std::numeric_limits<double>::infinity();
        window.max_value = -std::numeric_limits<double>::infinity();
      }
      if (!doc_read) {
        doc_read = window;
      } else if (const auto merged =
                     obs::merge_histogram_values(*doc_read, window)) {
        doc_read = *merged;
      }
    }
    if (doc_read) {
      point.doc_read_p50_s = obs::histogram_quantile(*doc_read, 0.50);
      point.doc_read_p95_s = obs::histogram_quantile(*doc_read, 0.95);
    }
    sweep_cluster.stop();
    std::printf(
        "  %-22s rps %7.1f  hit-rate %5.1f%%  doc_read p95 %.3fms  "
        "status-hit nodes %d/%d\n",
        point.label, point.rps, 100.0 * point.hit_rate,
        1e3 * point.doc_read_p95_s, point.status_hit_nodes, kCacheNodes);
  }
  bench::print_note(
      "expected shape: the warm sweep serves nearly everything from the "
      "page cache (hit rate -> 1, doc_read p95 collapses — the phase is a "
      "hashmap probe instead of a content copy) and rps rises over the "
      "copy-path point; the tight budget lands between, with the Zipf head "
      "resident and the tail evicting.");

  obs::JsonWriter pr8;
  pr8.begin_object();
  pr8.key("schema").value("sweb-bench/1");
  pr8.key("bench").value("closedloop");
  pr8.key("pr").value(8);
  pr8.key("scenarios").begin_object();
  // The fixed trajectory scenarios reuse this run's PR6 measurements — the
  // baseline cluster already serves through the (default 8 MiB) cache, so
  // those numbers ARE the zero-copy hot path.
  pr8.key("baseline").begin_object();
  pr8.key("config").begin_object();
  pr8.key("nodes").value(4);
  pr8.key("clients").value(kBaseClients);
  pr8.key("requests_per_client").value(kBasePerClient);
  pr8.key("file_bytes").value(std::int64_t{8192});
  pr8.key("slow_budget_ms").value(std::int64_t{250});
  pr8.end_object();
  pr8.key("rps").value(base_rps);
  pr8.key("requests_ok").value(base_ok.load());
  pr8.key("requests_failed").value(base_failed.load());
  pr8.key("slow_records").value(base_slow_records);
  pr8.key("latency").begin_object();
  pr8.key("p50_s").value(
      total_phase ? obs::histogram_quantile(*total_phase, 0.50) : 0.0);
  pr8.key("p95_s").value(
      total_phase ? obs::histogram_quantile(*total_phase, 0.95) : 0.0);
  pr8.key("p99_s").value(
      total_phase ? obs::histogram_quantile(*total_phase, 0.99) : 0.0);
  pr8.end_object();
  pr8.key("phases").begin_object();
  for (const obs::Phase phase : obs::all_phases()) {
    const char* name = obs::phase_name(phase);
    const auto merged = merged_phase(name);
    const std::uint64_t count = merged ? merged->count : 0;
    pr8.key(name).begin_object();
    pr8.key("count").value(count);
    pr8.key("p50_s").value(
        merged && count > 0 ? obs::histogram_quantile(*merged, 0.50) : 0.0);
    pr8.key("p95_s").value(
        merged && count > 0 ? obs::histogram_quantile(*merged, 0.95) : 0.0);
    pr8.key("p99_s").value(
        merged && count > 0 ? obs::histogram_quantile(*merged, 0.99) : 0.0);
    pr8.end_object();
  }
  pr8.end_object();  // phases
  pr8.end_object();  // baseline
  pr8.key("crash_drill").begin_object();
  pr8.key("requests_ok").value(chaos_ok.load());
  pr8.key("requests_failed").value(chaos_failed.load());
  pr8.key("fallback_bridged").value(chaos_fallbacks.load());
  pr8.key("detect_s").value(detect_s);
  pr8.key("detect_budget_s").value(detect_budget_s);
  pr8.key("rejoin_s").value(rejoin_s);
  pr8.end_object();
  pr8.key("degraded_link").begin_object();
  pr8.key("requests_ok").value(degraded_ok.load());
  pr8.key("requests_failed").value(degraded_failed.load());
  pr8.key("requests_retried").value(degraded_retried.load());
  pr8.key("connections_faulted").value(faulted);
  pr8.key("resets_injected").value(resets_injected);
  pr8.key("slow_records").value(degraded_slow_records);
  pr8.key("latency").begin_object();
  pr8.key("p50_s").value(chaos_p50_s);
  pr8.key("p99_s").value(chaos_p99_s);
  pr8.end_object();
  pr8.end_object();  // degraded_link
  pr8.key("cache_sweep").begin_object();
  pr8.key("config").begin_object();
  pr8.key("nodes").value(kCacheNodes);
  pr8.key("clients").value(kCacheClients);
  pr8.key("requests_per_client").value(kCachePerClient);
  pr8.key("doc_count").value(static_cast<std::uint64_t>(kCacheDocCount));
  pr8.key("doc_bytes").value(kCacheDocBytes);
  pr8.key("zipf_s").value(1.1);
  pr8.end_object();
  pr8.key("points").begin_array();
  for (const CachePoint& point : sweep) {
    pr8.begin_object();
    pr8.key("label").value(point.label);
    pr8.key("cache_bytes_per_node").value(point.budget_bytes);
    pr8.key("rps").value(point.rps);
    pr8.key("requests_ok").value(point.ok);
    pr8.key("requests_failed").value(point.failed);
    pr8.key("cache_hits").value(point.hits);
    pr8.key("cache_misses").value(point.misses);
    pr8.key("hit_rate").value(point.hit_rate);
    pr8.key("doc_read_p50_s").value(point.doc_read_p50_s);
    pr8.key("doc_read_p95_s").value(point.doc_read_p95_s);
    pr8.key("status_hit_nodes").value(point.status_hit_nodes);
    pr8.end_object();
  }
  pr8.end_array();  // points
  pr8.end_object();  // cache_sweep
  pr8.end_object();  // scenarios
  pr8.end_object();
  if (!bench::write_json_report("BENCH_PR8.json", pr8.str())) return 1;
  return 0;
}
