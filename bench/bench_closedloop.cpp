// Open-loop vs closed-loop load generation (methodology study).
//
// The paper's tests are open-loop ("at each second a constant number of
// requests are launched") while period benchmarking tools (WebStone) were
// closed-loop (N users, think time). The same saturated server looks very
// different through the two lenses — a classic measurement pitfall this
// bench makes concrete on the 1-node Meiko serving 1.5 MB files
// (capacity ~3 rps).
#include "bench_common.h"

#include "workload/closed_loop.h"

namespace {

using namespace sweb;

workload::ExperimentSpec base_spec() {
  workload::ExperimentSpec spec = bench::meiko_spec(1, 1536 * 1024, 64);
  spec.policy = "round-robin";  // one node: scheduling is moot
  return spec;
}

}  // namespace

int main() {
  using namespace sweb;
  bench::print_header(
      "Open vs closed loop", "The same saturated server, two lenses",
      "1-node Meiko, 1.5 MB files (capacity ~3 rps). Open loop: fixed "
      "arrival rate for 30 s. Closed loop: N virtual users with 1 s mean "
      "think time for 60 s.");

  std::printf("open loop (fixed arrival rate):\n");
  metrics::Table open_table(
      {"offered rps", "achieved rps", "mean resp", "p95 resp", "drop"});
  for (double rps : {2.0, 4.0, 8.0, 16.0}) {
    workload::ExperimentSpec spec = base_spec();
    spec.burst.rps = rps;
    spec.burst.duration_s = 30.0;
    const auto r = workload::run_experiment(spec);
    open_table.add_row({metrics::fmt(rps, 0),
                        metrics::fmt(r.achieved_rps, 1),
                        bench::seconds_cell(r.summary.mean_response) + " s",
                        bench::seconds_cell(r.summary.p95_response) + " s",
                        metrics::fmt_pct(r.summary.drop_rate())});
  }
  std::printf("%s\n", open_table.render().c_str());

  std::printf("closed loop (N users, 1 s think):\n");
  metrics::Table closed_table(
      {"users", "throughput rps", "mean resp", "p95 resp", "drop"});
  for (int users : {2, 8, 24, 64}) {
    workload::ClosedLoopSpec loop;
    loop.num_clients = users;
    loop.think_mean_s = 1.0;
    loop.duration_s = 60.0;
    const auto r = workload::run_closed_loop(base_spec(), loop);
    closed_table.add_row({std::to_string(users),
                          metrics::fmt(r.throughput_rps, 1),
                          bench::seconds_cell(r.mean_response) + " s",
                          bench::seconds_cell(r.summary.p95_response) + " s",
                          metrics::fmt_pct(r.summary.drop_rate())});
  }
  std::printf("%s", closed_table.render().c_str());
  bench::print_note(
      "expected shape: past ~3 rps the open loop reports runaway latency "
      "and mass drops at a pinned 'offered' rate, while the closed loop "
      "self-throttles — throughput plateaus at capacity, latency grows "
      "only with the user population, and almost nothing drops.");
  return 0;
}
