// Quickstart: bring up a simulated 6-node SWEB server, trace one HTTP
// transaction end-to-end (the paper's Figure 1 + §3.2 lifecycle), then run
// a small burst and print the summary.
//
//   $ ./quickstart
//
// This is the 60-second tour of the public API: build a Cluster from a
// preset, attach a Docbase and a SwebServer with the scheduling policy of
// your choice, issue client requests, read the metrics.
#include <cstdio>

#include "cluster/cluster.h"
#include "cluster/config.h"
#include "core/server.h"
#include "fs/docbase.h"
#include "metrics/table.h"
#include "sim/simulation.h"
#include "util/rng.h"

using namespace sweb;

int main() {
  std::printf("SWEB quickstart: a scalable WWW server on a simulated "
              "Meiko CS-2\n\n");

  // --- 1. Build the multicomputer ---------------------------------------
  sim::Simulation sim;
  util::Rng rng(2026);
  cluster::Cluster meiko(sim, cluster::meiko_config(6));

  // Campus client populations: 3 MB/s per subnet, 1.5 ms one-way latency.
  // Several subnets so the burst isn't bottlenecked on a single last-mile
  // pipe (each link also has its own DNS resolver cache).
  std::vector<cluster::ClientLinkId> subnets;
  for (int i = 0; i < 8; ++i) {
    subnets.push_back(meiko.add_client_link("campus" + std::to_string(i),
                                            3e6, 1.5e-3));
  }
  const cluster::ClientLinkId lan = subnets[0];

  // --- 2. Publish a document base ----------------------------------------
  // 120 digital-library scenes striped across the six node disks.
  fs::Docbase docs =
      fs::make_uniform(120, 1536 * 1024, 6, fs::Placement::kRoundRobin,
                       nullptr, "/adl");

  // --- 3. Start the server with the multi-faceted scheduler --------------
  core::SwebServer server(meiko, docs, core::Oracle::builtin(),
                          core::make_policy("sweb"), core::ServerParams{},
                          rng);
  server.start();

  // --- 4. One request, traced (Figure 1) ---------------------------------
  const std::string path = docs.documents()[7].path;  // owned by node 1
  const auto id = server.client_request(lan, path);
  sim.run_until(30.0);

  const metrics::RequestRecord& rec = server.collector().record(id);
  std::printf("One transaction for %s (%.0f KB, owner node %d):\n",
              rec.path.c_str(), rec.size_bytes / 1024.0,
              docs.find(path)->owner);
  std::printf("  DNS resolution        %8.2f ms  (round-robin rotation)\n",
              rec.t_dns * 1e3);
  std::printf("  TCP connect           %8.2f ms\n", rec.t_connect * 1e3);
  std::printf("  preprocess (parse)    %8.2f ms  on node %d\n",
              rec.t_preprocess * 1e3, rec.first_node);
  std::printf("  broker analysis       %8.2f ms  (multi-faceted estimate)\n",
              rec.t_analysis * 1e3);
  if (rec.redirected) {
    std::printf("  302 redirection       %8.2f ms  -> node %d\n",
                rec.t_redirect * 1e3, rec.final_node);
  } else {
    std::printf("  (no redirection: node %d was the best choice)\n",
                rec.final_node);
  }
  std::printf("  disk/NFS fetch        %8.2f ms%s\n", rec.t_data * 1e3,
              rec.cache_hit      ? "  (page-cache hit)"
              : rec.remote_read  ? "  (NFS remote read)"
                                 : "  (local disk)");
  std::printf("  marshal + transmit    %8.2f ms\n", rec.t_send * 1e3);
  std::printf("  total response        %8.2f ms, HTTP %d\n\n",
              rec.response_time() * 1e3, rec.status_code);

  // --- 5. A burst: 16 requests/second for 10 seconds ---------------------
  for (int second = 0; second < 10; ++second) {
    for (int i = 0; i < 16; ++i) {
      const double at = sim.now() + second + i / 16.0;
      const std::string& target =
          docs.documents()[rng.index(docs.size())].path;
      const cluster::ClientLinkId subnet =
          subnets[rng.index(subnets.size())];
      sim.schedule_at(at, [&server, subnet, target] {
        server.client_request(subnet, target);
      });
    }
  }
  sim.run_until(sim.now() + 120.0);

  const metrics::Summary s = server.collector().summarize();
  metrics::Table table({"metric", "value"});
  table.add_row({"requests", std::to_string(s.total)});
  table.add_row({"completed", std::to_string(s.completed)});
  table.add_row({"mean response", metrics::fmt(s.mean_response, 3) + " s"});
  table.add_row({"p95 response", metrics::fmt(s.p95_response, 3) + " s"});
  table.add_row({"drop rate", metrics::fmt_pct(s.drop_rate())});
  table.add_row({"redirected", metrics::fmt_pct(s.redirect_rate())});
  table.add_row({"page-cache hits", std::to_string(s.cache_hits)});
  std::printf("Burst of 16 rps for 10 s on 6 nodes:\n%s",
              table.render().c_str());
  return 0;
}
