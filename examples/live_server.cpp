// A live SWEB cluster on real sockets.
//
// Starts HTTP server nodes on loopback ports (each a thread with its own
// listener, sharing the load board), then acts as a browser: resolves via
// the round-robin rotation, follows 302 re-assignments, and prints what
// happened on the wire. Run it, or point curl at the printed ports while it
// lingers.
//
// Observability:
//   live_server --status                 serve, print GET /sweb/status JSON
//   live_server --serve                  linger so curl can poke the nodes
//   live_server --metrics-out run.jsonl  append registry snapshots (JSONL)
//   live_server --trace-out run.json     Chrome trace_event of every request
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <thread>

#include "fs/docbase.h"
#include "obs/snapshot.h"
#include "runtime/client.h"
#include "runtime/mini_cluster.h"
#include "util/cli.h"
#include "util/rng.h"

using namespace sweb;

namespace {

// SIGTERM/SIGINT ask for a graceful drain: the handler only flips a flag
// (the only thing async-signal-safe to do); the linger loop sees it and
// falls through to the normal shutdown path, where cluster.stop() drains
// the reactors instead of the process dying mid-connection.
volatile std::sig_atomic_t g_shutdown_requested = 0;

void request_shutdown(int /*signum*/) { g_shutdown_requested = 1; }

void install_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = request_shutdown;
  sigemptyset(&action.sa_mask);
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli;
  cli.option("nodes", "4", "number of server nodes")
      .option("workers", "16",
              "CGI worker threads per node (the reactor's CPU-bound stage; "
              "socket I/O is event-driven and not bounded by this)")
      .option("queue", "32",
              "legacy pool depth folded into the derived connection cap "
              "when --max-connections is 0")
      .option("max-connections", "0",
              "concurrent connections per node before 503 load shedding; "
              "0 derives workers + queue (the old pool admission bound)")
      .option("serve-seconds", "60", "how long --serve/--status linger")
      .option("heartbeat", "2000",
              "heartbeat period in ms (the loadd tick; paper uses 2-3 s)")
      .option("staleness", "6000",
              "staleness timeout in ms before a silent node is marked "
              "unavailable (~3x the heartbeat)")
      .option("header-timeout", "0",
              "per-request deadline in ms before a slow client gets 408 "
              "(slowloris defense); 0 uses the general io timeout")
      .option("cache-bytes", "8388608",
              "per-node page-cache byte budget; resident documents are "
              "served zero-copy (writev), 0 disables the cache")
      .option("cache-discount", "0",
              "connection units subtracted from a node's apparent load "
              "when it holds the requested document resident (cache-aware "
              "redirects; 0 keeps placement purely load-based)")
      // Overload control (see DESIGN "Overload control"): off unless
      // --overload is set, preserving the static-cap behavior.
      .option("overload-brownout-ms", "50",
              "queue-delay estimate (ms) at which brownout begins: CGI and "
              "non-resident documents get 503 while cache hits still serve")
      .option("overload-shed-ms", "250",
              "queue-delay estimate (ms) at which shedding begins: new "
              "connections are refused at accept with an adaptive "
              "Retry-After from the estimated drain time")
      .option("overload-util", "0.9",
              "connections/cap utilization that also triggers brownout "
              "(degrade before the hard cap sheds)")
      .option("overload-dwell-ms", "1000",
              "minimum ms in a state before the controller may step back "
              "down (the anti-flap hysteresis dwell)")
      .option("metrics-out", "",
              "append registry snapshots to this JSONL file (1 Hz)")
      .option("trace-out", "",
              "write a Chrome trace_event JSON of every request served")
      .option("slow-log", "",
              "append slow-request forensics records (JSONL) to this file")
      .option("slow-budget", "0",
              "slow budget in ms: a request whose total exceeds this leaves "
              "a forensics record (0: only chaos-faulted requests do)")
      // Degraded-link chaos: every connection the chosen node accepts is
      // injected with these faults (see runtime/chaos.h).
      .option("chaos-node", "-1",
              "degrade this node's link with the --chaos-* faults below "
              "(-1: chaos off)")
      .option("chaos-read-delay", "0", "ms of latency before every read")
      .option("chaos-write-delay", "0", "ms of latency before every write")
      .option("chaos-jitter", "0", "uniform extra ms added to each delay")
      .option("chaos-stall", "0",
              "one-time stall in ms before a connection's first read")
      .option("chaos-throttle", "0", "byte-rate ceiling (bytes/sec; 0 off)")
      .option("chaos-torn", "0",
              "tear writes: max bytes per send() segment (0 off)")
      .option("chaos-reset-prob", "0",
              "probability [0,1] a connection is reset mid-stream")
      .option("chaos-reset-after", "0",
              "bytes written before a doomed connection's RST fires")
      .option("chaos-seed", "0",
              "chaos RNG seed (0: the built-in default, reproducible)")
      .flag("overload",
            "enable adaptive overload control (brownout degradation + "
            "shedding at accept) with the --overload-* thresholds")
      .flag("serve", "keep serving after the demo session")
      .flag("status", "fetch and print GET /sweb/status, then linger");
  try {
    if (!cli.parse(argc, argv)) {
      std::fputs(cli.help_text("live_server").c_str(), stdout);
      return 0;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "live_server: %s\n", e.what());
    return 1;
  }
  const bool linger = cli.get_flag("serve") || cli.get_flag("status");
  const int nodes = static_cast<int>(cli.get_int("nodes"));

  util::Rng rng(3);
  fs::Docbase docs = fs::make_adl(12, nodes, rng);
  runtime::MiniClusterOptions options;
  options.max_workers = static_cast<int>(cli.get_int("workers"));
  options.max_pending = static_cast<int>(cli.get_int("queue"));
  options.max_connections = static_cast<int>(cli.get_int("max-connections"));
  options.heartbeat_period =
      std::chrono::milliseconds(cli.get_int("heartbeat"));
  options.staleness_timeout =
      std::chrono::milliseconds(cli.get_int("staleness"));
  options.header_timeout =
      std::chrono::milliseconds(cli.get_int("header-timeout"));
  options.cache_bytes_per_node =
      static_cast<std::uint64_t>(cli.get_int("cache-bytes"));
  options.broker.cache_hit_discount = cli.get_double("cache-discount");
  if (cli.get_flag("overload")) {
    options.overload.enabled = true;
    options.overload.brownout_enter_s =
        static_cast<double>(cli.get_int("overload-brownout-ms")) / 1000.0;
    // Exit thresholds sit at 40% of their enter thresholds (the defaults'
    // 20/50 and 100/250 ratio) — the hysteresis band scales with the knob.
    options.overload.brownout_exit_s = 0.4 * options.overload.brownout_enter_s;
    options.overload.shed_enter_s =
        static_cast<double>(cli.get_int("overload-shed-ms")) / 1000.0;
    options.overload.shed_exit_s = 0.4 * options.overload.shed_enter_s;
    options.overload.brownout_utilization = cli.get_double("overload-util");
    options.overload.min_dwell_s =
        static_cast<double>(cli.get_int("overload-dwell-ms")) / 1000.0;
  }
  options.chaos_node = static_cast<int>(cli.get_int("chaos-node"));
  options.chaos.read_delay =
      std::chrono::milliseconds(cli.get_int("chaos-read-delay"));
  options.chaos.write_delay =
      std::chrono::milliseconds(cli.get_int("chaos-write-delay"));
  options.chaos.delay_jitter =
      std::chrono::milliseconds(cli.get_int("chaos-jitter"));
  options.chaos.first_read_stall =
      std::chrono::milliseconds(cli.get_int("chaos-stall"));
  options.chaos.throttle_bytes_per_sec =
      static_cast<std::size_t>(cli.get_int("chaos-throttle"));
  options.chaos.torn_write_max_bytes =
      static_cast<std::size_t>(cli.get_int("chaos-torn"));
  options.chaos.reset_probability = cli.get_double("chaos-reset-prob");
  options.chaos.reset_after_bytes =
      static_cast<std::uint64_t>(cli.get_int("chaos-reset-after"));
  if (cli.get_int("chaos-seed") != 0) {
    options.chaos_seed = static_cast<std::uint64_t>(cli.get_int("chaos-seed"));
  }
  options.slow_log_path = cli.get("slow-log");
  options.slow_budget = std::chrono::milliseconds(cli.get_int("slow-budget"));
  runtime::MiniCluster cluster(nodes, docs, options);
  if (options.chaos_node >= 0 && options.chaos_node < nodes &&
      options.chaos.active()) {
    std::printf("chaos: node %d degraded (seed %llu)\n", options.chaos_node,
                static_cast<unsigned long long>(options.chaos_seed));
  }
  if (!cli.get("trace-out").empty()) cluster.tracer().set_enabled(true);
  install_signal_handlers();
  cluster.start();
  if (cli.get_flag("overload")) {
    std::printf("overload control: on (brownout at %s ms queue delay, "
                "shedding at %s ms)\n",
                cli.get("overload-brownout-ms").c_str(),
                cli.get("overload-shed-ms").c_str());
  }

  // Live metrics tail: one registry snapshot per second, JSON lines.
  std::unique_ptr<obs::SnapshotWriter> snapshots;
  if (const std::string path = cli.get("metrics-out"); !path.empty()) {
    snapshots = std::make_unique<obs::SnapshotWriter>(
        cluster.registry(), path, std::chrono::milliseconds(1000));
    std::printf("metrics snapshots -> %s (tail -f it)\n", path.c_str());
  }

  std::printf("SWEB mini-cluster up: %d nodes on loopback\n", nodes);
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    std::printf("  node %d: http://127.0.0.1:%u\n", n, cluster.port(n));
  }
  std::printf("\n");

  // A browse session through the round-robin "DNS".
  const char* session[] = {
      "/adl/meta0.html", "/adl/thumb1.gif", "/adl/browse2.jpg",
      "/adl/scene3.tiff", "/adl/meta4.html", "/adl/scene7.tiff",
  };
  for (const char* path : session) {
    const std::string url = cluster.next_base_url() + path;
    const auto result = runtime::fetch(url);
    if (!result) {
      std::printf("GET %-18s FAILED\n", path);
      continue;
    }
    const auto node = result->response.headers.get("X-Sweb-Node");
    std::printf("GET %-18s -> %d, %6zu bytes, served by node %s%s\n", path,
                http::code(result->response.status),
                result->response.body.size(),
                node ? std::string(*node).c_str() : "?",
                result->redirects_followed > 0 ? "  (302 re-assigned)" : "");
  }

  // Load-board snapshot: who did the work.
  std::printf("\nload board:\n");
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    const runtime::NodeLoad l = cluster.board().snapshot(n);
    std::printf("  node %d: served=%llu redirected=%llu\n", n,
                static_cast<unsigned long long>(l.served),
                static_cast<unsigned long long>(l.redirected));
  }

  if (cli.get_flag("status")) {
    // The introspection endpoint, as any monitoring agent would see it.
    const std::string url =
        "http://127.0.0.1:" + std::to_string(cluster.port(0)) +
        "/sweb/status";
    const auto status = runtime::fetch(url);
    if (status) {
      std::printf("\nGET /sweb/status (node 0):\n%s\n",
                  status->response.body.c_str());
    } else {
      std::printf("\nGET /sweb/status FAILED\n");
    }
  }

  if (linger) {
    const int seconds = static_cast<int>(cli.get_int("serve-seconds"));
    std::printf("\nserving for %d s (SIGTERM/SIGINT drain early) — try:\n"
                "  curl -i http://127.0.0.1:%u/adl/meta0.html\n"
                "  curl -s http://127.0.0.1:%u/sweb/status\n",
                seconds, cluster.port(0), cluster.port(0));
    // Sliced sleep so a SIGTERM/SIGINT ends the linger within ~100 ms and
    // falls through to the graceful cluster.stop() below, instead of the
    // default handler killing the process mid-connection.
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
    while (g_shutdown_requested == 0 &&
           std::chrono::steady_clock::now() < until) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (g_shutdown_requested != 0) {
      std::printf("\nshutdown requested; draining...\n");
    }
  }

  if (const std::string path = cli.get("slow-log"); !path.empty()) {
    std::printf("slow-request forensics -> %s (%llu records)\n", path.c_str(),
                static_cast<unsigned long long>(
                    cluster.slow_log().total_recorded()));
  }
  snapshots.reset();  // final snapshot line before the cluster stops
  if (const std::string path = cli.get("trace-out"); !path.empty()) {
    if (cluster.tracer().write_file(path)) {
      std::printf("wrote %zu trace spans to %s (open in chrome://tracing "
                  "or https://ui.perfetto.dev)\n",
                  cluster.tracer().size(), path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
    }
  }
  cluster.stop();
  std::printf("\ncluster stopped.\n");
  return 0;
}
