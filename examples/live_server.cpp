// A live SWEB cluster on real sockets.
//
// Starts four HTTP server nodes on loopback ports (each a thread with its
// own listener, sharing the load board), then acts as a browser: resolves
// via the round-robin rotation, follows 302 re-assignments, and prints what
// happened on the wire. Run it, or point curl at the printed ports while it
// sleeps.
#include <chrono>
#include <cstdio>
#include <thread>

#include "fs/docbase.h"
#include "runtime/client.h"
#include "runtime/mini_cluster.h"
#include "util/rng.h"

using namespace sweb;

int main(int argc, char** argv) {
  const bool linger = argc > 1 && std::string_view(argv[1]) == "--serve";

  util::Rng rng(3);
  fs::Docbase docs = fs::make_adl(12, 4, rng);
  runtime::MiniCluster cluster(4, docs);
  cluster.start();

  std::printf("SWEB mini-cluster up: 4 nodes on loopback\n");
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    std::printf("  node %d: http://127.0.0.1:%u\n", n, cluster.port(n));
  }
  std::printf("\n");

  // A browse session through the round-robin "DNS".
  const char* session[] = {
      "/adl/meta0.html", "/adl/thumb1.gif", "/adl/browse2.jpg",
      "/adl/scene3.tiff", "/adl/meta4.html", "/adl/scene7.tiff",
  };
  for (const char* path : session) {
    const std::string url = cluster.next_base_url() + path;
    const auto result = runtime::fetch(url);
    if (!result) {
      std::printf("GET %-18s FAILED\n", path);
      continue;
    }
    const auto node = result->response.headers.get("X-Sweb-Node");
    std::printf("GET %-18s -> %d, %6zu bytes, served by node %s%s\n", path,
                http::code(result->response.status),
                result->response.body.size(),
                node ? std::string(*node).c_str() : "?",
                result->redirects_followed > 0 ? "  (302 re-assigned)" : "");
  }

  // Load-board snapshot: who did the work.
  std::printf("\nload board:\n");
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    const runtime::NodeLoad l = cluster.board().snapshot(n);
    std::printf("  node %d: served=%llu redirected=%llu\n", n,
                static_cast<unsigned long long>(l.served),
                static_cast<unsigned long long>(l.redirected));
  }

  if (linger) {
    std::printf("\nserving for 60 s — try: curl -i "
                "http://127.0.0.1:%u/adl/meta0.html\n",
                cluster.port(0));
    std::this_thread::sleep_for(std::chrono::seconds(60));
  }
  cluster.stop();
  std::printf("\ncluster stopped.\n");
  return 0;
}
