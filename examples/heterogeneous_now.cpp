// Nodes leaving and joining the resource pool on a network of workstations.
//
// "Our assumption is that the computing powers of workstations ... can be
// used for other computing needs, and can leave and join the system
// resource pool at any time. Thus scheduling techniques which are adaptive
// to the dynamic change of system load and configuration are desirable.
// The DNS in a round-robin fashion cannot predict those changes."
//
// This example runs a steady request stream against a 4-node NOW while a
// workstation is reclaimed by its owner mid-run and returns later, and
// shows loadd marking it unavailable (and SWEB routing around it) while
// plain round-robin DNS keeps throwing requests at the dead address.
#include <cstdio>

#include "metrics/table.h"
#include "workload/scenario.h"

using namespace sweb;

namespace {

workload::ExperimentResult run_policy(const char* policy) {
  workload::ExperimentSpec spec;
  spec.cluster = cluster::now_config(4);
  spec.docbase =
      fs::make_uniform(200, 64 * 1024, 4, fs::Placement::kRoundRobin);
  spec.clients = workload::ucsb_clients();
  spec.policy = policy;
  spec.burst.rps = 10.0;
  spec.burst.duration_s = 60.0;
  spec.cluster.request_timeout_s = 20.0;  // impatient campus users

  // Node 2's owner comes back at t=15 and leaves again at t=40.
  spec.on_start = [](core::SwebServer& server, sim::Simulation& sim) {
    sim.schedule_at(15.0, [&server] {
      std::printf("  t=15s  node 2 leaves the pool (owner reclaimed it)\n");
      server.set_node_available(2, false);
    });
    sim.schedule_at(40.0, [&server] {
      std::printf("  t=40s  node 2 rejoins the pool\n");
      server.set_node_available(2, true);
    });
  };
  return workload::run_experiment(spec);
}

}  // namespace

int main() {
  std::printf("Workstation churn on a 4-node NOW (10 rps, 60 s; node 2 "
              "gone from t=15 to t=40)\n\n");

  metrics::Table table({"policy", "completed", "dropped", "mean resp",
                        "redirects"});
  for (const char* policy : {"round-robin", "sweb"}) {
    std::printf("%s:\n", policy);
    const auto r = run_policy(policy);
    table.add_row({policy, std::to_string(r.summary.completed),
                   metrics::fmt_pct(r.summary.drop_rate()),
                   metrics::fmt(r.summary.mean_response, 3) + " s",
                   metrics::fmt_pct(r.summary.redirect_rate())});
  }
  std::printf("\n%s", table.render().c_str());
  std::printf(
      "\nWhy the difference: the DNS rotation is updated when a node\n"
      "leaves, but every resolver that cached the dead address keeps using\n"
      "it until the TTL expires — those requests hang and time out under\n"
      "round robin. Under SWEB the loadd staleness window (%.0f s without a\n"
      "broadcast) also stops peers from *redirecting* work to the dead\n"
      "node, and rejoin is picked up at the next broadcast.\n",
      core::LoaddParams{}.staleness_timeout_s);
  return 0;
}
