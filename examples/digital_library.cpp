// The motivating workload: the Alexandria Digital Library front end.
//
// "The collections of the library currently involve geographically-
// referenced materials, such as maps, satellite images, digitized aerial
// photographs, and associated metadata." A browse session mixes tiny
// metadata pages, thumbnails, medium browse images, full 1.5 MB scenes and
// CGI spatial queries — exactly the heterogeneous CPU/I-O mix the
// multi-faceted scheduler was designed for.
//
// This example replays browse sessions against all four policies and
// prints the comparison.
#include <cstdio>
#include <string>
#include <vector>

#include "metrics/table.h"
#include "workload/scenario.h"

using namespace sweb;

namespace {

// A collection several times larger than the cluster's aggregate page
// cache, so placement and load-awareness matter, not just residency.
constexpr std::size_t kScenes = 192;

/// A browsing user: metadata -> thumbnail -> browse image -> (sometimes)
/// the full scene, plus an occasional spatial CGI query.
std::vector<std::string> browse_session(util::Rng& rng, std::size_t scene) {
  std::vector<std::string> gets;
  gets.push_back("/adl/meta" + std::to_string(scene * 4) + ".html");
  gets.push_back("/adl/thumb" + std::to_string(scene * 4 + 1) + ".gif");
  gets.push_back("/adl/browse" + std::to_string(scene * 4 + 2) + ".jpg");
  if (rng.bernoulli(0.4)) {
    gets.push_back("/adl/scene" + std::to_string(scene * 4 + 3) + ".tiff");
  }
  if (rng.bernoulli(0.15)) {
    // A spatial query endpoint (the CGI class: real CPU before any bytes).
    const std::size_t q = rng.index(std::max<std::size_t>(1, kScenes / 8));
    gets.push_back("/adl/query" + std::to_string(kScenes * 4 + q) + ".cgi");
  }
  return gets;
}

workload::ExperimentResult run_policy(const std::string& policy,
                                      double sessions_per_second) {
  util::Rng rng(7);
  workload::ExperimentSpec spec;
  spec.cluster = cluster::meiko_config(6);
  spec.docbase = fs::make_adl(kScenes, 6, rng);
  spec.clients = workload::ucsb_clients();
  spec.policy = policy;
  // We schedule the requests ourselves (sessions, not independent GETs),
  // so the generic burst launches nothing.
  spec.burst.rps = 0.0;
  spec.burst.duration_s = 30.0;
  spec.seed = 99;
  spec.on_start = [&, sessions_per_second](core::SwebServer& server,
                                           sim::Simulation& sim) {
    util::Rng session_rng(41);
    const auto& docbase = server.collector();  // unused; docs captured below
    (void)docbase;
    for (int second = 0; second < 30; ++second) {
      const int n = static_cast<int>(sessions_per_second);
      for (int i = 0; i < n; ++i) {
        const std::size_t scene = session_rng.zipf(kScenes, 1.1);
        const auto gets = browse_session(session_rng, scene);
        double at = second + session_rng.uniform(0.0, 1.0);
        for (const std::string& path : gets) {
          sim.schedule_at(at, [&server, path, i] {
            server.client_request(
                static_cast<cluster::ClientLinkId>(i % 12), path);
          });
          at += session_rng.uniform(0.3, 1.2);  // think time between clicks
        }
      }
    }
  };
  return workload::run_experiment(spec);
}

}  // namespace

int main() {
  std::printf("Alexandria Digital Library browse workload on 6-node SWEB\n");
  std::printf("(metadata + thumbnails + browse images + 1.5MB scenes + "
              "CGI spatial queries; Zipf scene popularity)\n\n");

  metrics::Table table({"policy", "completed", "mean resp", "p95 resp",
                        "drop", "redirects", "cache hits"});
  for (const char* policy :
       {"round-robin", "file-locality", "cpu-only", "sweb"}) {
    const auto r = run_policy(policy, 30.0);
    table.add_row({policy, std::to_string(r.summary.completed),
                   metrics::fmt(r.summary.mean_response, 3) + " s",
                   metrics::fmt(r.summary.p95_response, 3) + " s",
                   metrics::fmt_pct(r.summary.drop_rate()),
                   metrics::fmt_pct(r.summary.redirect_rate()),
                   metrics::fmt_pct(r.cache_hit_rate)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nWhat to look for: pure file locality funnels the hot scenes to "
      "their owner\nnodes and collapses; pure round robin gets a free ride "
      "from every node's page\ncache on this highly-repetitive mix but has "
      "the CGI queries landing blind;\nSWEB keeps the tail (p95) smallest "
      "by weighing CPU, disk and redirect costs\ntogether.\n");
  return 0;
}
